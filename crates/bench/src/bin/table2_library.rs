//! Reproduces **Table 2**: the cell library with the number of
//! configurations per cell, split into layout instances `[A,B,…]`.
//!
//! Counts come from the paper's pivot enumeration (Fig. 4) and are
//! cross-checked against the analytic product-of-factorials count.
//!
//! Run: `cargo run -p tr-bench --bin table2_library`

use tr_bench::Harness;
use tr_spnet::pivot;

fn main() {
    let h = Harness::new();
    println!("Table 2 reproduction — library cells and configuration counts");
    println!(
        "{:<8} {:>5} {:>9} {:>10} {:>12}   instances",
        "cell", "#in", "#trans", "#configs", "(analytic)"
    );
    let mut total = 0usize;
    for cell in h.library.cells() {
        let topo = &cell.configurations()[0];
        let enumerated = pivot::find_all_reorderings(topo).len();
        let analytic = topo.configuration_count() as usize;
        assert_eq!(
            enumerated,
            analytic,
            "pivot enumeration disagrees with analytic count for {}",
            cell.name()
        );
        assert_eq!(enumerated, cell.configurations().len());
        total += enumerated;
        let inst = cell.instances();
        let labels: Vec<String> = inst
            .iter()
            .enumerate()
            .map(|(i, ins)| {
                format!(
                    "[{}]×{}",
                    char::from(b'A' + u8::try_from(i).unwrap_or(25)),
                    ins.configurations.len()
                )
            })
            .collect();
        println!(
            "{:<8} {:>5} {:>9} {:>10} {:>12}   {}",
            cell.name(),
            cell.arity(),
            cell.transistor_count(),
            enumerated,
            analytic,
            labels.join(" ")
        );
    }
    println!("total configurations across the library: {total}");
    println!();
    println!("paper's readable entries: inv=1, oai21=4 over [A],[B], aoi211=12 over");
    println!("[A],[B],[C], aoi221=24, aoi222=48, nor3=6 — all match the rows above.");
}
