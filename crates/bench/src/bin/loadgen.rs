//! `loadgen` — closed-loop load harness for the `tr-serve` daemon.
//!
//! Spawns an in-process server, then measures the two things the
//! serving layer exists for:
//!
//! 1. **Cold vs warm** — one `POST /optimize` of `mult8` with the exact
//!    BDD backend (cache miss: parse → compile → BDD build → optimize),
//!    then repeats that must hit the warm cache and skip everything up
//!    to the optimizer. The warm mean must beat the cold request by at
//!    least `--min-speedup` (default 10×) or the run fails.
//! 2. **Concurrent storm** — `--clients` closed-loop clients (default
//!    8) sweep the small suite `--rounds` times each, every response
//!    checked for success and for silent degradation. Reports
//!    throughput and p50/p90/p99 latency.
//!
//! Results land in `--out` (default `BENCH_PR10.json`) in the same
//! `{"benchmarks": [...]}` shape the criterion shim saves, so
//! `bench_delta` can gate the warm path against the committed baseline.
//!
//! Exit codes: 0 success, 1 a request failed / a response degraded /
//! the warm path missed the speedup floor, 2 usage error.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use tr_flow::json::json_string;
use tr_flow::FlowEnv;
use tr_netlist::format as trnet;
use tr_netlist::suite;
use tr_serve::{http, ServeConfig, Server};

struct Options {
    clients: usize,
    rounds: usize,
    warm_iters: usize,
    min_speedup: f64,
    server_threads: usize,
    out: String,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen [--clients N] [--rounds N] [--warm-iters N] \
         [--min-speedup X] [--server-threads N] [--out FILE]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        clients: 8,
        rounds: 3,
        warm_iters: 20,
        min_speedup: 10.0,
        server_threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        out: "BENCH_PR10.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<usize, ExitCode> {
            it.next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .ok_or_else(|| {
                    eprintln!("loadgen: {name} needs a positive integer");
                    ExitCode::from(2)
                })
        };
        match a.as_str() {
            "--clients" => opts.clients = num("--clients")?,
            "--rounds" => opts.rounds = num("--rounds")?,
            "--warm-iters" => opts.warm_iters = num("--warm-iters")?,
            "--server-threads" => opts.server_threads = num("--server-threads")?,
            "--min-speedup" => {
                opts.min_speedup = it.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                    eprintln!("loadgen: --min-speedup needs a number");
                    ExitCode::from(2)
                })?;
            }
            "--out" => {
                opts.out = it
                    .next()
                    .ok_or_else(|| {
                        eprintln!("loadgen: --out needs a path");
                        ExitCode::from(2)
                    })?
                    .clone();
            }
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

/// An `/optimize` body for a `.trnet` netlist with the exact backend.
fn body_for(name: &str, netlist: &str) -> String {
    format!(
        "{{\"name\": {}, \"netlist\": {}, \"format\": \"trnet\", \"prob\": \"bdd\", \"scenario\": \"a:1\"}}",
        json_string(name),
        json_string(netlist)
    )
}

/// One request; returns the latency or a description of what went
/// wrong. Degraded responses are failures here: under this load there
/// is no budget pressure, so any independent-fallback means the server
/// quietly served a worse answer.
fn timed_post(addr: &SocketAddr, body: &str) -> Result<(Duration, bool), String> {
    let t = Instant::now();
    let resp = http::request(&addr.to_string(), "POST", "/optimize", body.as_bytes())
        .map_err(|e| format!("transport: {e}"))?;
    let dt = t.elapsed();
    if resp.status != 200 {
        return Err(format!("HTTP {}: {}", resp.status, resp.text()));
    }
    let text = resp.text();
    if text.contains("\"degraded\":true") {
        return Err(format!("degraded response: {text}"));
    }
    Ok((dt, resp.header("x-cache") == Some("hit")))
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let env = FlowEnv::new();
    let server = match Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: opts.server_threads,
        queue_depth: 2 * opts.clients + 8,
        watch_signals: false,
        ..Default::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: cannot bind server: {e}");
            return ExitCode::from(1);
        }
    };
    let addr = server.addr();
    let (handle, join) = server.spawn();
    println!(
        "loadgen: in-process tr-serve on http://{addr} ({} workers)",
        opts.server_threads
    );

    // ---- Phase 1: cold vs warm on mult8, exact backend --------------
    let mult8 = suite::standard_suite(&env.library)
        .into_iter()
        .find(|c| c.name == "mult8")
        .expect("standard suite has mult8");
    let mult8_body = body_for("mult8", &trnet::write(&mult8.circuit));

    let (cold, was_hit) = match timed_post(&addr, &mult8_body) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: cold mult8 request failed: {e}");
            return ExitCode::from(1);
        }
    };
    if was_hit {
        eprintln!("loadgen: first mult8 request hit the cache of a fresh server");
        return ExitCode::from(1);
    }
    let mut warm_total = Duration::ZERO;
    for i in 0..opts.warm_iters {
        match timed_post(&addr, &mult8_body) {
            Ok((dt, true)) => warm_total += dt,
            Ok((_, false)) => {
                eprintln!("loadgen: warm iteration {i} missed the cache");
                return ExitCode::from(1);
            }
            Err(e) => {
                eprintln!("loadgen: warm iteration {i} failed: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let warm = warm_total / opts.warm_iters as u32;
    let speedup = cold.as_secs_f64() / warm.as_secs_f64();
    println!(
        "cold mult8 {:>10.3} ms   warm mean {:>8.3} ms   speedup {speedup:>6.1}x",
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3
    );

    // ---- Phase 2: concurrent storm over the small suite -------------
    let cases: Vec<(String, String)> = suite::small_suite(&env.library)
        .iter()
        .map(|c| (c.name.clone(), body_for(&c.name, &trnet::write(&c.circuit))))
        .collect();
    let total_requests = opts.clients * opts.rounds * cases.len();
    println!(
        "storm: {} clients x {} rounds x {} circuits = {} requests",
        opts.clients,
        opts.rounds,
        cases.len(),
        total_requests
    );
    let storm_start = Instant::now();
    let results: Vec<Result<(Duration, bool), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|client| {
                let cases = &cases;
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(opts.rounds * cases.len());
                    for round in 0..opts.rounds {
                        // Offset each client's sweep so the mix stays
                        // heterogeneous instead of a 8-wide convoy.
                        for i in 0..cases.len() {
                            let (_, body) = &cases[(i + client + round) % cases.len()];
                            out.push(timed_post(&addr, body));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let storm_wall = storm_start.elapsed();

    let mut latencies = Vec::with_capacity(results.len());
    let mut hits = 0usize;
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok((dt, hit)) => {
                latencies.push(dt);
                hits += hit as usize;
            }
            Err(e) => failures.push(e),
        }
    }
    latencies.sort();
    let (p50, p90, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 90.0),
        percentile(&latencies, 99.0),
    );
    let throughput = latencies.len() as f64 / storm_wall.as_secs_f64();
    println!(
        "storm: {} ok / {} failed, {hits} warm hits, {throughput:.1} req/s",
        latencies.len(),
        failures.len()
    );
    println!(
        "latency: p50 {:.3} ms   p90 {:.3} ms   p99 {:.3} ms",
        p50.as_secs_f64() * 1e3,
        p90.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3
    );

    handle.shutdown();
    let _ = join.join();

    // ---- Persist in the bench_delta / criterion-shim shape ----------
    let entry = |name: &str, d: Duration, iters: usize| {
        format!(
            "    {{\"name\": \"{name}\", \"mean_ns\": {:.1}, \"iters\": {iters}}}",
            d.as_secs_f64() * 1e9
        )
    };
    let json = format!(
        "{{\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
        [
            entry("p10_serve_cold_optimize_mult8", cold, 1),
            entry("p10_serve_warm_optimize_mult8", warm, opts.warm_iters),
            entry("p10_loadgen_p50", p50, latencies.len()),
            entry("p10_loadgen_p90", p90, latencies.len()),
            entry("p10_loadgen_p99", p99, latencies.len()),
        ]
        .join(",\n")
    );
    if let Err(e) = std::fs::write(&opts.out, json) {
        eprintln!("loadgen: cannot write {}: {e}", opts.out);
        return ExitCode::from(1);
    }
    println!("results -> {}", opts.out);

    if !failures.is_empty() {
        eprintln!(
            "loadgen: {} requests failed; first: {}",
            failures.len(),
            failures[0]
        );
        return ExitCode::from(1);
    }
    if speedup < opts.min_speedup {
        eprintln!(
            "loadgen: warm speedup {speedup:.1}x is under the {:.1}x floor",
            opts.min_speedup
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
