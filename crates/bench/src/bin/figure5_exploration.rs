//! Reproduces **Fig. 5**: the execution of the exhaustive exploration
//! algorithm (Fig. 4) on the OAI21 gate of Fig. 2(a), generating all four
//! reorderings of Fig. 1(a).
//!
//! Run: `cargo run -p tr-bench --bin figure5_exploration`

use tr_spnet::{pivot, SpTree, Topology};

fn main() {
    // The starting graph of Fig. 2(a): pull-down (a1|a2)-b.
    let start = Topology::new(
        SpTree::series(vec![
            SpTree::parallel(vec![SpTree::leaf(0), SpTree::leaf(1)]),
            SpTree::leaf(2),
        ]),
        SpTree::parallel(vec![
            SpTree::leaf(2),
            SpTree::series(vec![SpTree::leaf(0), SpTree::leaf(1)]),
        ]),
    );
    let names = ["a1", "a2", "b"];
    let render = |t: &Topology| {
        format!(
            "N:[{}]  P:[{}]",
            t.pulldown.render(&names),
            t.pullup.render(&names)
        )
    };

    println!("Figure 5 reproduction — exhaustive exploration of the OAI21 gate");
    println!("starting configuration: {}", render(&start));
    println!(
        "internal nodes: {} (n0 in the pull-down, n1 in the pull-up)",
        start.internal_node_count()
    );
    println!();

    let (all, trace) = pivot::find_all_reorderings_traced(&start);
    println!("exploration trace (PIVOT_AND_SEARCH):");
    for step in &trace {
        println!(
            "  #{:<2} --pivot n{}--> #{:<2} {}",
            step.from,
            step.node,
            step.to,
            if step.fresh {
                "new"
            } else {
                "already visited (pruned)"
            }
        );
    }
    println!();
    println!("discovered configurations:");
    for (i, t) in all.iter().enumerate() {
        println!("  #{i}: {}", render(t));
    }
    println!();
    assert_eq!(all.len(), 4, "Fig. 5 generates exactly four reorderings");
    println!(
        "OK: all {} reorderings of Fig. 1(a) generated (matches the paper).",
        all.len()
    );
}
