//! Shared experiment-harness machinery for the table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_motivation` | Table 1(b) + Fig. 1(a) |
//! | `table2_library` | Table 2 |
//! | `figure5_exploration` | Fig. 5 |
//! | `table3_benchmarks` | Table 3 + Fig. 6 scenarios |
//! | `ablation_model` | model ablations (ours) |
//!
//! This library holds the Table 3 row pipeline so it can be unit-tested
//! and reused by the Criterion benches.

#![forbid(unsafe_code)]

use tr_boolean::SignalStats;
use tr_gatelib::{Library, Process};
use tr_netlist::Circuit;
use tr_power::scenario::Scenario;
use tr_power::PowerModel;
use tr_reorder::{optimize, Objective};
use tr_sim::{simulate, SimConfig};
use tr_timing::TimingModel;

/// Everything the experiments need, constructed once.
pub struct Harness {
    /// The Table 2 cell library.
    pub library: Library,
    /// Process parameters.
    pub process: Process,
    /// The extended power model.
    pub model: PowerModel,
    /// The Elmore timing model.
    pub timing: TimingModel,
}

impl Harness {
    /// Builds the standard harness.
    pub fn new() -> Self {
        let library = Library::standard();
        let process = Process::default();
        let model = PowerModel::new(&library, process.clone());
        let timing = TimingModel::new(&library, process.clone());
        Harness {
            library,
            process,
            model,
            timing,
        }
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

/// One row of the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Gate count (paper column G).
    pub gates: usize,
    /// Model-estimated reduction, best vs worst, percent (column M).
    pub model_reduction: f64,
    /// Switch-level simulated reduction, best vs worst, percent (column S).
    pub sim_reduction: f64,
    /// Delay increase of the best-power netlist vs the original mapping,
    /// percent (column D).
    pub delay_increase: f64,
    /// Simulated power of the best netlist (W) — extra diagnostics.
    pub sim_power_best: f64,
    /// Simulated power of the worst netlist (W).
    pub sim_power_worst: f64,
}

impl Table3Row {
    /// Serializes the row as a JSON object (no external serializer in the
    /// offline build environment, so this is hand-rolled).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"gates\":{},\"model_reduction\":{},",
                "\"sim_reduction\":{},\"delay_increase\":{},",
                "\"sim_power_best\":{},\"sim_power_worst\":{}}}"
            ),
            json_string(&self.name),
            self.gates,
            json_f64(self.model_reduction),
            json_f64(self.sim_reduction),
            json_f64(self.delay_increase),
            json_f64(self.sim_power_best),
            json_f64(self.sim_power_worst),
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serializes scenario-keyed rows as pretty-printed JSON.
pub fn table3_json(results: &std::collections::BTreeMap<String, Vec<Table3Row>>) -> String {
    let mut out = String::from("{\n");
    for (i, (label, rows)) in results.iter().enumerate() {
        out.push_str(&format!("  {}: [\n", json_string(label)));
        for (j, row) in rows.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&row.to_json());
            out.push_str(if j + 1 < rows.len() { ",\n" } else { "\n" });
        }
        out.push_str(if i + 1 < results.len() {
            "  ],\n"
        } else {
            "  ]\n"
        });
    }
    out.push('}');
    out
}

/// Simulation length heuristics: long enough for each input to toggle a
/// few thousand times, bounded so the whole suite stays laptop-scale.
pub fn sim_duration(stats: &[SignalStats], quick: bool) -> f64 {
    let max_d = stats
        .iter()
        .map(SignalStats::density)
        .fold(0.0f64, f64::max)
        .max(1.0);
    let target_toggles = if quick { 400.0 } else { 2000.0 };
    (target_toggles / max_d).clamp(1.0e-6, 1.0e-2)
}

/// Computes one Table 3 row: optimize for best and worst power, measure
/// both with the switch-level simulator, and compare delays.
pub fn table3_row(
    harness: &Harness,
    name: &str,
    circuit: &Circuit,
    scenario: Scenario,
    seed: u64,
    quick: bool,
) -> Table3Row {
    let stats = scenario.input_stats(circuit.primary_inputs().len(), seed);
    let best = optimize(
        circuit,
        &harness.library,
        &harness.model,
        &stats,
        Objective::MinimizePower,
    );
    let worst = optimize(
        circuit,
        &harness.library,
        &harness.model,
        &stats,
        Objective::MaximizePower,
    );
    let model_reduction =
        100.0 * (worst.power_after - best.power_after) / worst.power_after.max(f64::MIN_POSITIVE);

    let duration = sim_duration(&stats, quick);
    let config = SimConfig {
        duration,
        warmup: duration * 0.1,
        seed: seed ^ 0x5151,
    };
    let sim_best = simulate(
        &best.circuit,
        &harness.library,
        &harness.process,
        &harness.timing,
        &stats,
        &config,
    );
    let sim_worst = simulate(
        &worst.circuit,
        &harness.library,
        &harness.process,
        &harness.timing,
        &stats,
        &config,
    );
    let sim_reduction =
        100.0 * (sim_worst.power - sim_best.power) / sim_worst.power.max(f64::MIN_POSITIVE);

    let delay_orig = tr_timing::critical_path_delay(circuit, &harness.timing);
    let delay_best = tr_timing::critical_path_delay(&best.circuit, &harness.timing);
    let delay_increase = 100.0 * (delay_best - delay_orig) / delay_orig.max(f64::MIN_POSITIVE);

    Table3Row {
        name: name.to_string(),
        gates: circuit.gates().len(),
        model_reduction,
        sim_reduction,
        delay_increase,
        sim_power_best: sim_best.power,
        sim_power_worst: sim_worst.power,
    }
}

/// Formats rows as the paper-style text table, with averages.
pub fn render_table3(scenario_name: &str, rows: &[Table3Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Scenario {scenario_name}:");
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>8} {:>8} {:>8}",
        "circuit", "G", "M%", "S%", "D%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>8.1} {:>8.1} {:>8.1}",
            r.name, r.gates, r.model_reduction, r.sim_reduction, r.delay_increase
        );
    }
    let n = rows.len().max(1) as f64;
    let avg_m: f64 = rows.iter().map(|r| r.model_reduction).sum::<f64>() / n;
    let avg_s: f64 = rows.iter().map(|r| r.sim_reduction).sum::<f64>() / n;
    let avg_d: f64 = rows.iter().map(|r| r.delay_increase).sum::<f64>() / n;
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>8.1} {:>8.1} {:>8.1}   (averages)",
        "AVG", "", avg_m, avg_s, avg_d
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_netlist::generators;

    #[test]
    fn table3_row_on_small_circuit() {
        let h = Harness::new();
        let c = generators::ripple_carry_adder(4, &h.library);
        let row = table3_row(&h, "rca4", &c, Scenario::a(), 3, true);
        assert_eq!(row.gates, c.gates().len());
        // Model headroom must exist and simulation must agree on the sign.
        assert!(row.model_reduction > 0.0);
        assert!(row.sim_power_worst > 0.0);
        assert!(
            row.sim_reduction > -5.0,
            "simulator strongly disagrees: {row:?}"
        );
    }

    #[test]
    fn durations_are_sane() {
        let stats = vec![SignalStats::new(0.5, 1.0e6)];
        let d = sim_duration(&stats, false);
        assert!((1.0e-6..=1.0e-2).contains(&d));
        let dq = sim_duration(&stats, true);
        assert!(dq < d);
    }

    #[test]
    fn render_contains_averages() {
        let rows = vec![Table3Row {
            name: "x".into(),
            gates: 10,
            model_reduction: 5.0,
            sim_reduction: 7.0,
            delay_increase: 1.0,
            sim_power_best: 1.0,
            sim_power_worst: 2.0,
        }];
        let s = render_table3("A", &rows);
        assert!(s.contains("AVG"));
        assert!(s.contains('x'));
    }
}
