//! Shared experiment-harness machinery for the table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_motivation` | Table 1(b) + Fig. 1(a) |
//! | `table2_library` | Table 2 |
//! | `figure5_exploration` | Fig. 5 |
//! | `table3_benchmarks` | Table 3 + Fig. 6 scenarios |
//! | `ablation_model` | model ablations (ours) |
//! | `independence_error` | exact-vs-independent statistics table (ours, via `tr-bdd`) |
//!
//! Since PR 3 the pipeline itself lives in `tr-flow`: the [`Harness`] is
//! `tr_flow::FlowEnv` under its historical name, and [`table3_row`] is a
//! thin adapter from a [`tr_flow::FlowReport`] to the paper's Table 3
//! columns. This library keeps the table renderers and the JSON artifact
//! writers so they can be unit-tested and reused by the Criterion
//! benches.

#![forbid(unsafe_code)]

use tr_boolean::SignalStats;
use tr_flow::json::{json_f64, json_string};
use tr_flow::{DurationPolicy, Flow, SimOptions};
use tr_netlist::Circuit;
use tr_power::scenario::Scenario;

/// Everything the experiments need, constructed once. The historical
/// name of [`tr_flow::FlowEnv`] — same fields, same construction.
pub use tr_flow::FlowEnv as Harness;

/// One row of the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Gate count (paper column G).
    pub gates: usize,
    /// Model-estimated reduction, best vs worst, percent (column M).
    pub model_reduction: f64,
    /// Switch-level simulated reduction, best vs worst, percent (column S).
    pub sim_reduction: f64,
    /// Delay increase of the best-power netlist vs the original mapping,
    /// percent (column D).
    pub delay_increase: f64,
    /// Simulated power of the best netlist (W) — extra diagnostics.
    pub sim_power_best: f64,
    /// Simulated power of the worst netlist (W).
    pub sim_power_worst: f64,
}

impl Table3Row {
    /// Serializes the row as a JSON object (no external serializer in the
    /// offline build environment, so this is hand-rolled via
    /// [`tr_flow::json`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"gates\":{},\"model_reduction\":{},",
                "\"sim_reduction\":{},\"delay_increase\":{},",
                "\"sim_power_best\":{},\"sim_power_worst\":{}}}"
            ),
            json_string(&self.name),
            self.gates,
            json_f64(self.model_reduction),
            json_f64(self.sim_reduction),
            json_f64(self.delay_increase),
            json_f64(self.sim_power_best),
            json_f64(self.sim_power_worst),
        )
    }
}

/// Serializes scenario-keyed rows as pretty-printed JSON.
pub fn table3_json(results: &std::collections::BTreeMap<String, Vec<Table3Row>>) -> String {
    let mut out = String::from("{\n");
    for (i, (label, rows)) in results.iter().enumerate() {
        out.push_str(&format!("  {}: [\n", json_string(label)));
        for (j, row) in rows.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&row.to_json());
            out.push_str(if j + 1 < rows.len() { ",\n" } else { "\n" });
        }
        out.push_str(if i + 1 < results.len() {
            "  ],\n"
        } else {
            "  ]\n"
        });
    }
    out.push('}');
    out
}

/// Simulation length heuristics: long enough for each input to toggle a
/// few thousand times, bounded so the whole suite stays laptop-scale.
/// (The policy itself lives in [`tr_flow::sim_duration`].)
pub fn sim_duration(stats: &[SignalStats], quick: bool) -> f64 {
    tr_flow::sim_duration(stats, if quick { 400.0 } else { 2000.0 })
}

/// Computes one Table 3 row by running the standard flow — optimize for
/// best and worst power, measure both with the switch-level simulator,
/// compare delays — and projecting the report onto the paper's columns.
pub fn table3_row(
    harness: &Harness,
    name: &str,
    circuit: &Circuit,
    scenario: Scenario,
    seed: u64,
    quick: bool,
) -> Table3Row {
    let report = Flow::from_circuit(circuit.clone())
        .scenario(scenario, seed)
        .simulate(SimOptions {
            duration: DurationPolicy::Auto {
                target_toggles: if quick { 400.0 } else { 2000.0 },
            },
            warmup_frac: 0.1,
            seed: seed ^ 0x5151,
            baseline: false,
        })
        .run(harness)
        .expect("in-memory suite circuits always flow");
    let sim = report.sim.expect("simulation was requested");
    Table3Row {
        name: name.to_string(),
        gates: report.gates,
        model_reduction: report
            .power
            .headroom_percent
            .expect("headroom pass is on by default"),
        sim_reduction: sim.reduction_percent.expect("worst ordering was simulated"),
        delay_increase: report.delay.increase_percent,
        sim_power_best: sim.optimized_w,
        sim_power_worst: sim.worst_w.expect("worst ordering was simulated"),
    }
}

/// Formats rows as the paper-style text table, with averages.
pub fn render_table3(scenario_name: &str, rows: &[Table3Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Scenario {scenario_name}:");
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>8} {:>8} {:>8}",
        "circuit", "G", "M%", "S%", "D%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>8.1} {:>8.1} {:>8.1}",
            r.name, r.gates, r.model_reduction, r.sim_reduction, r.delay_increase
        );
    }
    let n = rows.len().max(1) as f64;
    let avg_m: f64 = rows.iter().map(|r| r.model_reduction).sum::<f64>() / n;
    let avg_s: f64 = rows.iter().map(|r| r.sim_reduction).sum::<f64>() / n;
    let avg_d: f64 = rows.iter().map(|r| r.delay_increase).sum::<f64>() / n;
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>8.1} {:>8.1} {:>8.1}   (averages)",
        "AVG", "", avg_m, avg_s, avg_d
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_netlist::generators;

    #[test]
    fn table3_row_on_small_circuit() {
        let h = Harness::new();
        let c = generators::ripple_carry_adder(4, &h.library);
        let row = table3_row(&h, "rca4", &c, Scenario::a(), 3, true);
        assert_eq!(row.gates, c.gates().len());
        // Model headroom must exist and simulation must agree on the sign.
        assert!(row.model_reduction > 0.0);
        assert!(row.sim_power_worst > 0.0);
        assert!(
            row.sim_reduction > -5.0,
            "simulator strongly disagrees: {row:?}"
        );
    }

    #[test]
    fn table3_row_equals_direct_pipeline() {
        // The flow-based row must reproduce the hand-rolled pipeline it
        // replaced, float for float.
        let h = Harness::new();
        let c = generators::parity_tree(8, &h.library);
        let seed = 11u64;
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), seed);
        let best = tr_reorder::optimize(
            &c,
            &h.library,
            &h.model,
            &stats,
            tr_reorder::Objective::MinimizePower,
        );
        let worst = tr_reorder::optimize(
            &c,
            &h.library,
            &h.model,
            &stats,
            tr_reorder::Objective::MaximizePower,
        );
        let duration = sim_duration(&stats, true);
        let config = tr_sim::SimConfig {
            duration,
            warmup: duration * 0.1,
            seed: seed ^ 0x5151,
        };
        let sim_best = tr_sim::simulate(
            &best.circuit,
            &h.library,
            &h.process,
            &h.timing,
            &stats,
            &config,
        );
        let sim_worst = tr_sim::simulate(
            &worst.circuit,
            &h.library,
            &h.process,
            &h.timing,
            &stats,
            &config,
        );
        let row = table3_row(&h, "parity8", &c, Scenario::a(), seed, true);
        assert_eq!(
            row.model_reduction,
            100.0 * (worst.power_after - best.power_after)
                / worst.power_after.max(f64::MIN_POSITIVE)
        );
        assert_eq!(row.sim_power_best, sim_best.power);
        assert_eq!(row.sim_power_worst, sim_worst.power);
        let d0 = tr_timing::critical_path_delay(&c, &h.timing);
        let d1 = tr_timing::critical_path_delay(&best.circuit, &h.timing);
        assert_eq!(
            row.delay_increase,
            100.0 * (d1 - d0) / d0.max(f64::MIN_POSITIVE)
        );
    }

    #[test]
    fn durations_are_sane() {
        let stats = vec![SignalStats::new(0.5, 1.0e6)];
        let d = sim_duration(&stats, false);
        assert!((1.0e-6..=1.0e-2).contains(&d));
        let dq = sim_duration(&stats, true);
        assert!(dq < d);
    }

    #[test]
    fn render_contains_averages() {
        let rows = vec![Table3Row {
            name: "x".into(),
            gates: 10,
            model_reduction: 5.0,
            sim_reduction: 7.0,
            delay_increase: 1.0,
            sim_power_best: 1.0,
            sim_power_worst: 2.0,
        }];
        let s = render_table3("A", &rows);
        assert!(s.contains("AVG"));
        assert!(s.contains('x'));
    }
}
