//! Criterion performance benches (P1–P4 of DESIGN.md, plus P5):
//!
//! * P1 — per-gate power-model evaluation (the optimizer's inner loop);
//! * P2 — exhaustive reordering enumeration of the largest cell;
//! * P3 — whole-circuit optimization (Fig. 3 traversal), sequential and
//!   parallel;
//! * P4 — switch-level simulator event throughput;
//! * P5 — batch-runner throughput (circuits × scenarios grid on the
//!   work-stealing pool);
//! * P6 — exact-BDD statistics throughput (build + probabilities +
//!   densities) on the large reconvergent generators;
//! * P7 — the fixpoint loop's inner step: dirty-cone incremental
//!   re-propagation after one accepted cell change, against the
//!   full-rebuild-per-change alternative it replaces;
//! * P8 — the cone-partitioned exact backend: propagation on mult8
//!   (against `p6_bdd_propagate_mult8`, the monolithic engine it must
//!   beat ≥2×) and on mult16, past the monolithic ceiling, plus
//!   region-sharded parallel optimization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tr_bench::Harness;
use tr_boolean::SignalStats;
use tr_flow::{BatchJob, BatchRunner, Flow, ScenarioSpec};
use tr_gatelib::CellKind;
use tr_netlist::{generators, Circuit};
use tr_power::scenario::Scenario;
use tr_reorder::{optimize, optimize_parallel, Objective};
use tr_sim::{simulate, SimConfig};
use tr_spnet::pivot;

fn p1_gate_power(c: &mut Criterion) {
    let h = Harness::new();
    let stats = [
        SignalStats::new(0.3, 1.0e5),
        SignalStats::new(0.7, 9.0e5),
        SignalStats::new(0.5, 2.0e5),
        SignalStats::new(0.4, 4.0e5),
        SignalStats::new(0.6, 7.0e5),
    ];
    c.bench_function("p1_gate_power_oai221", |b| {
        b.iter(|| {
            std::hint::black_box(h.model.gate_power(
                &CellKind::oai(&[2, 2, 1]),
                0,
                std::hint::black_box(&stats),
                5.0e-15,
            ))
        })
    });
    c.bench_function("p1_best_and_worst_oai221", |b| {
        b.iter(|| {
            std::hint::black_box(h.model.best_and_worst(
                &CellKind::oai(&[2, 2, 1]),
                std::hint::black_box(&stats),
                5.0e-15,
            ))
        })
    });
    // The by-id fast path the compiled optimizer actually runs: scratch
    // reuse, no hashing, no GatePower materialization.
    let oai221 = h.model.cell_id(&CellKind::oai(&[2, 2, 1])).expect("cell");
    c.bench_function("p1_best_and_worst_oai221_by_id", |b| {
        let mut scratch = tr_power::Scratch::new();
        b.iter(|| {
            std::hint::black_box(h.model.best_and_worst_by_id(
                oai221,
                std::hint::black_box(&stats),
                5.0e-15,
                &mut scratch,
            ))
        })
    });
}

fn p2_enumeration(c: &mut Criterion) {
    let h = Harness::new();
    let aoi222 = h
        .library
        .cell_by_name("aoi222")
        .expect("library cell")
        .configurations()[0]
        .clone();
    c.bench_function("p2_enumerate_aoi222_48_configs", |b| {
        b.iter(|| std::hint::black_box(pivot::find_all_reorderings(std::hint::black_box(&aoi222))))
    });
}

fn p3_optimize(c: &mut Criterion) {
    let h = Harness::new();
    let rca16 = generators::ripple_carry_adder(16, &h.library);
    let stats = Scenario::a().input_stats(rca16.primary_inputs().len(), 1);
    c.bench_function("p3_optimize_rca16", |b| {
        b.iter(|| {
            std::hint::black_box(optimize(
                &rca16,
                &h.library,
                &h.model,
                &stats,
                Objective::MinimizePower,
            ))
        })
    });
    c.bench_function("p3_optimize_rca16_parallel4", |b| {
        b.iter(|| {
            std::hint::black_box(optimize_parallel(
                &rca16,
                &h.library,
                &h.model,
                &stats,
                Objective::MinimizePower,
                4,
            ))
        })
    });
}

fn p4_simulator(c: &mut Criterion) {
    let h = Harness::new();
    let parity = generators::parity_tree(8, &h.library);
    let stats = vec![SignalStats::new(0.5, 1.0e6); 8];
    let config = SimConfig {
        duration: 5.0e-5,
        warmup: 5.0e-6,
        seed: 3,
    };
    c.bench_function("p4_simulate_parity8_50us", |b| {
        b.iter_batched(
            || config,
            |cfg| {
                std::hint::black_box(simulate(
                    &parity, &h.library, &h.process, &h.timing, &stats, &cfg,
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn p5_batch(c: &mut Criterion) {
    let h = Harness::new();
    let jobs: Vec<BatchJob> = vec![
        BatchJob::from_circuit("rca8", generators::ripple_carry_adder(8, &h.library)),
        BatchJob::from_circuit("parity8", generators::parity_tree(8, &h.library)),
        BatchJob::from_circuit("mux8", generators::mux_tree(3, &h.library)),
        BatchJob::from_circuit("dec4", generators::decoder(4, &h.library)),
    ];
    let matrix = vec![
        ScenarioSpec::a(1),
        ScenarioSpec::a(2),
        ScenarioSpec::b(2.0e7),
        ScenarioSpec::b(5.0e7),
    ];
    let template = Flow::from_circuit(Circuit::new("template"));
    for threads in [1usize, 4] {
        c.bench_function(&format!("p5_batch_4x4_grid_threads{threads}"), |b| {
            let runner = BatchRunner::new(template.clone()).threads(threads);
            b.iter(|| std::hint::black_box(runner.run(&h, &jobs, &matrix, |_| {})))
        });
    }
}

fn p6_bdd_propagate(c: &mut Criterion) {
    let h = Harness::new();
    let cases = [
        ("csel32", generators::carry_select_adder(32, 8, &h.library)),
        ("cskip24", generators::carry_skip_adder(24, 4, &h.library)),
        ("mult8", generators::array_multiplier(8, &h.library)),
    ];
    for (name, circuit) in cases {
        let pi = vec![SignalStats::default(); circuit.primary_inputs().len()];
        c.bench_function(&format!("p6_bdd_propagate_{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    tr_power::propagate_exact_bdd(&circuit, &h.library, &pi)
                        .expect("fits the node budget"),
                )
            })
        });
    }
}

fn p7_fixpoint(c: &mut Criterion) {
    let h = Harness::new();
    let cases = [
        ("csel32", generators::carry_select_adder(32, 8, &h.library)),
        ("cskip24", generators::carry_skip_adder(24, 4, &h.library)),
        ("mult8", generators::array_multiplier(8, &h.library)),
    ];
    // A mid-circuit gate with a same-arity dual (NAND↔NOR, AOI↔OAI).
    let victim_of = |circuit: &Circuit| {
        let duals: Vec<tr_netlist::GateId> = (0..circuit.gates().len())
            .filter(|&i| !matches!(circuit.gates()[i].cell, CellKind::Inv))
            .map(tr_netlist::GateId)
            .collect();
        duals[duals.len() / 2]
    };
    let toggle_cell = |circuit: &mut Circuit, g: tr_netlist::GateId| {
        let dual = match circuit.gate(g).cell.clone() {
            CellKind::Nand(k) => CellKind::Nor(k),
            CellKind::Nor(k) => CellKind::Nand(k),
            CellKind::Aoi(gs) => CellKind::Oai(gs),
            CellKind::Oai(gs) => CellKind::Aoi(gs),
            CellKind::Inv => unreachable!("inverters are filtered out"),
        };
        circuit.set_cell(g, dual);
    };
    for (name, circuit) in cases {
        let pi = vec![SignalStats::default(); circuit.primary_inputs().len()];
        let victim = victim_of(&circuit);
        let configs = h
            .library
            .cell_by_name(circuit.gate(victim).cell.name().as_str())
            .expect("library cell")
            .configurations()
            .len();
        // The fixpoint loop's inner step: the optimizer accepted a
        // reordering move (a config change), and the statistics must be
        // re-validated for the edited circuit. The incremental engine
        // recomposes the touched gate, hash-conses to the identical
        // per-net BDD, and proves the dirty cone empty in one step.
        c.bench_function(&format!("p7_fixpoint_incremental_{name}"), |b| {
            let mut edited = circuit.clone();
            let mut prop = tr_power::IncrementalPropagator::new(
                &edited,
                &h.library,
                &pi,
                tr_power::PropagationMode::ExactBdd,
            )
            .expect("fits the node budget");
            let mut round = 0usize;
            b.iter(|| {
                round += 1;
                edited.set_config(victim, round % configs);
                std::hint::black_box(
                    prop.refresh(&edited, &h.library, &[victim])
                        .expect("fits the node budget"),
                )
            })
        });
        // What a sound implementation without dirty-cone tracking must
        // do after every accepted change: rebuild the circuit BDDs and
        // re-derive every net's statistics from scratch.
        c.bench_function(&format!("p7_fixpoint_full_{name}"), |b| {
            let mut edited = circuit.clone();
            let mut round = 0usize;
            b.iter(|| {
                round += 1;
                edited.set_config(victim, round % configs);
                std::hint::black_box(
                    tr_power::propagate_exact_bdd(&edited, &h.library, &pi)
                        .expect("fits the node budget"),
                )
            })
        });
        // The worst case: a function-changing cell substitution on a
        // mid-circuit gate. The dirty cone is real — in mult8 it covers
        // the deep output-side nets whose density pass dominates even a
        // full rebuild, so the win narrows as the cone widens.
        c.bench_function(&format!("p7_fixpoint_cell_{name}"), |b| {
            let mut edited = circuit.clone();
            let mut prop = tr_power::IncrementalPropagator::new(
                &edited,
                &h.library,
                &pi,
                tr_power::PropagationMode::ExactBdd,
            )
            .expect("fits the node budget");
            b.iter(|| {
                toggle_cell(&mut edited, victim);
                std::hint::black_box(
                    prop.refresh(&edited, &h.library, &[victim])
                        .expect("fits the node budget"),
                )
            })
        });
    }
}

fn p8_partitioned(c: &mut Criterion) {
    use tr_power::partition::{packing_options, propagate_partitioned, PartitionConfig};

    let h = Harness::new();
    let mult8 = generators::array_multiplier(8, &h.library);
    let pi = vec![SignalStats::default(); mult8.primary_inputs().len()];
    // The acceptance point: the accuracy-biased config (few, large
    // regions) that holds |ΔP| ≤ 0.05 on mult8 — compare against
    // `p6_bdd_propagate_mult8`, the monolithic run it must beat ≥2×.
    let accuracy = PartitionConfig::new(1 << 16, 40).with_region_cost(2048);
    c.bench_function("p8_partitioned_propagate_mult8", |b| {
        b.iter(|| {
            std::hint::black_box(
                propagate_partitioned(&mult8, &h.library, &pi, &accuracy)
                    .expect("fits the per-region budget"),
            )
        })
    });
    // The speed-biased default cut (what `--prob part` runs untuned).
    let default_config = PartitionConfig::new(
        tr_power::partition::DEFAULT_REGION_NODES,
        tr_power::partition::DEFAULT_CUT_WIDTH,
    );
    c.bench_function("p8_partitioned_propagate_mult8_default", |b| {
        b.iter(|| {
            std::hint::black_box(
                propagate_partitioned(&mult8, &h.library, &pi, &default_config)
                    .expect("fits the per-region budget"),
            )
        })
    });
    // Past the monolithic ceiling: mult16's 2848 gates, where the
    // whole-circuit engine cannot run at all (node-budget blowup).
    let big = generators::array_multiplier(16, &h.library);
    let big_pi = vec![SignalStats::default(); big.primary_inputs().len()];
    c.bench_function("p8_partitioned_propagate_mult16", |b| {
        b.iter(|| {
            std::hint::black_box(
                propagate_partitioned(&big, &h.library, &big_pi, &default_config)
                    .expect("fits the per-region budget"),
            )
        })
    });

    // Region-sharded optimization: exact per-net statistics feeding the
    // reorderer, workers claiming whole regions (dirty statistics stay
    // region-local), against the plain gate-parallel traversal.
    let compiled = tr_netlist::CompiledCircuit::compile(&mult8, &h.library).expect("compiles");
    let part = tr_netlist::partition::partition(
        &compiled,
        &packing_options(
            tr_power::partition::DEFAULT_REGION_NODES,
            tr_power::partition::DEFAULT_CUT_WIDTH,
            None,
        ),
    );
    let (net_stats, _) =
        propagate_partitioned(&mult8, &h.library, &pi, &default_config).expect("fits");
    c.bench_function("p8_partitioned_optimize_mult8_sharded4", |b| {
        b.iter(|| {
            std::hint::black_box(
                tr_reorder::optimize_sharded_governed_with_net_stats(
                    &mult8,
                    &h.library,
                    &h.model,
                    &net_stats,
                    Objective::MinimizePower,
                    &part,
                    4,
                    None,
                )
                .expect("ungoverned"),
            )
        })
    });
    c.bench_function("p8_partitioned_optimize_mult8_parallel4", |b| {
        b.iter(|| {
            std::hint::black_box(tr_reorder::optimize_parallel_with_net_stats(
                &mult8,
                &h.library,
                &h.model,
                &net_stats,
                Objective::MinimizePower,
                4,
            ))
        })
    });
}

criterion_group!(
    benches,
    p1_gate_power,
    p2_enumeration,
    p3_optimize,
    p4_simulator,
    p5_batch,
    p6_bdd_propagate,
    p7_fixpoint,
    p8_partitioned
);
criterion_main!(benches);
