//! Dense truth-table Boolean functions.

use std::fmt;

/// Maximum number of variables a [`BoolFn`] may depend on.
///
/// CMOS cells in standard libraries have at most six or so inputs; 16 leaves
/// generous headroom for whole-cone analysis of small circuits while keeping
/// the dense representation cheap (a 16-variable function is 8 KiB).
pub const MAX_VARS: usize = 16;

/// Error returned when combining two functions of different arity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArityError {
    /// Arity of the left operand.
    pub left: usize,
    /// Arity of the right operand.
    pub right: usize,
}

impl fmt::Display for ArityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "boolean functions have different arities ({} vs {})",
            self.left, self.right
        )
    }
}

impl std::error::Error for ArityError {}

/// A Boolean function of `n ≤ 16` variables stored as a dense truth table.
///
/// Minterm `m` (an `n`-bit assignment where bit `i` is the value of variable
/// `i`) corresponds to bit `m` of the table. The unused high bits of the
/// last word are kept at zero so that equality, hashing and popcounts are
/// exact.
///
/// # Example
///
/// ```
/// use tr_boolean::BoolFn;
///
/// let a = BoolFn::var(3, 0);
/// let b = BoolFn::var(3, 1);
/// let c = BoolFn::var(3, 2);
/// // y = (a + b)·c̄  — the pull-up condition of an OAI21 internal node
/// let y = a.or(&b).and(&c.not());
/// assert!(y.eval(&[true, false, false]));
/// assert!(!y.eval(&[true, false, true]));
/// assert_eq!(y.count_minterms(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BoolFn {
    nvars: usize,
    words: Vec<u64>,
}

/// Number of `u64` words needed for an `nvars`-variable table.
fn word_count(nvars: usize) -> usize {
    if nvars >= 6 {
        1 << (nvars - 6)
    } else {
        1
    }
}

/// Mask of valid bits in the (single) word of a small (`nvars < 6`) table.
fn tail_mask(nvars: usize) -> u64 {
    if nvars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << nvars)) - 1
    }
}

impl BoolFn {
    /// The constant-0 function of `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS`.
    pub fn zero(nvars: usize) -> Self {
        assert!(nvars <= MAX_VARS, "nvars {nvars} exceeds MAX_VARS");
        BoolFn {
            nvars,
            words: vec![0; word_count(nvars)],
        }
    }

    /// The constant-1 function of `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS`.
    pub fn one(nvars: usize) -> Self {
        let mut f = Self::zero(nvars);
        for w in &mut f.words {
            *w = u64::MAX;
        }
        let last = f.words.len() - 1;
        f.words[last] &= tail_mask(nvars);
        f
    }

    /// The projection function of variable `var` among `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS` or `var >= nvars`.
    pub fn var(nvars: usize, var: usize) -> Self {
        assert!(var < nvars, "variable index {var} out of range 0..{nvars}");
        let mut f = Self::zero(nvars);
        if var < 6 {
            // Periodic pattern inside each word.
            let mut pattern = 0u64;
            for m in 0..64u64 {
                if (m >> var) & 1 == 1 {
                    pattern |= 1 << m;
                }
            }
            for w in &mut f.words {
                *w = pattern;
            }
            let last = f.words.len() - 1;
            f.words[last] &= tail_mask(nvars);
        } else {
            // Whole words alternate in blocks of 2^(var-6).
            let block = 1usize << (var - 6);
            for (i, w) in f.words.iter_mut().enumerate() {
                if (i / block) & 1 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        f
    }

    /// The literal `var` (if `positive`) or `¬var` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS` or `var >= nvars`.
    pub fn literal(nvars: usize, var: usize, positive: bool) -> Self {
        let v = Self::var(nvars, var);
        if positive {
            v
        } else {
            v.not()
        }
    }

    /// Builds a function by evaluating `f` on every assignment.
    ///
    /// Bit `i` of the `&[bool]` argument is the value of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS`.
    pub fn from_fn<F: FnMut(&[bool]) -> bool>(nvars: usize, mut f: F) -> Self {
        let mut out = Self::zero(nvars);
        let mut assignment = vec![false; nvars];
        for m in 0..(1usize << nvars) {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = (m >> i) & 1 == 1;
            }
            if f(&assignment) {
                out.words[m >> 6] |= 1 << (m & 63);
            }
        }
        out
    }

    /// Builds a function from an explicit list of minterm indices.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS` or a minterm is `>= 2^nvars`.
    pub fn from_minterms(nvars: usize, minterms: &[usize]) -> Self {
        let mut out = Self::zero(nvars);
        for &m in minterms {
            assert!(m < (1usize << nvars), "minterm {m} out of range");
            out.words[m >> 6] |= 1 << (m & 63);
        }
        out
    }

    /// Number of variables this function is defined over.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Evaluates the function on a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != nvars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(
            assignment.len(),
            self.nvars,
            "assignment length must equal nvars"
        );
        let mut m = 0usize;
        for (i, &v) in assignment.iter().enumerate() {
            if v {
                m |= 1 << i;
            }
        }
        self.eval_minterm(m)
    }

    /// Evaluates the function on a minterm index (bit `i` = variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^nvars`.
    pub fn eval_minterm(&self, m: usize) -> bool {
        assert!(m < (1usize << self.nvars), "minterm {m} out of range");
        (self.words[m >> 6] >> (m & 63)) & 1 == 1
    }

    /// Logical complement.
    #[must_use]
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        let last = out.words.len() - 1;
        out.words[last] &= tail_mask(self.nvars);
        out
    }

    /// Checked conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`ArityError`] if the operands have different arities.
    pub fn try_and(&self, other: &Self) -> Result<Self, ArityError> {
        self.zip(other, |a, b| a & b)
    }

    /// Checked disjunction.
    ///
    /// # Errors
    ///
    /// Returns [`ArityError`] if the operands have different arities.
    pub fn try_or(&self, other: &Self) -> Result<Self, ArityError> {
        self.zip(other, |a, b| a | b)
    }

    /// Checked exclusive or.
    ///
    /// # Errors
    ///
    /// Returns [`ArityError`] if the operands have different arities.
    pub fn try_xor(&self, other: &Self) -> Result<Self, ArityError> {
        self.zip(other, |a, b| a ^ b)
    }

    /// Conjunction. See [`BoolFn::try_and`] for a non-panicking variant.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different arities.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        self.try_and(other).expect("arity mismatch in and()")
    }

    /// Disjunction. See [`BoolFn::try_or`] for a non-panicking variant.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different arities.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        self.try_or(other).expect("arity mismatch in or()")
    }

    /// Exclusive or. See [`BoolFn::try_xor`] for a non-panicking variant.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different arities.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        self.try_xor(other).expect("arity mismatch in xor()")
    }

    fn zip<F: Fn(u64, u64) -> u64>(&self, other: &Self, f: F) -> Result<Self, ArityError> {
        if self.nvars != other.nvars {
            return Err(ArityError {
                left: self.nvars,
                right: other.nvars,
            });
        }
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(BoolFn {
            nvars: self.nvars,
            words,
        })
    }

    /// Positive or negative cofactor `f|ᵥₐᵣ₌ᵥₐₗ`.
    ///
    /// The result keeps the same arity; the fixed variable simply becomes a
    /// don't-care.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    #[must_use]
    pub fn cofactor(&self, var: usize, val: bool) -> Self {
        assert!(var < self.nvars, "variable index {var} out of range");
        let mut out = self.clone();
        if var < 6 {
            // Bits of a word where variable `var` is 1.
            let mut ones = 0u64;
            for m in 0..64u64 {
                if (m >> var) & 1 == 1 {
                    ones |= 1 << m;
                }
            }
            let shift = 1u32 << var;
            for w in &mut out.words {
                if val {
                    let hi = *w & ones;
                    *w = hi | (hi >> shift);
                } else {
                    let lo = *w & !ones;
                    *w = lo | (lo << shift);
                }
            }
        } else {
            let block = 1usize << (var - 6);
            for (i, w) in out.words.iter_mut().enumerate() {
                // Word index with the `var` block-bit forced to `val`.
                let j = if val { i | block } else { i & !block };
                *w = self.words[j];
            }
        }
        out
    }

    /// The Boolean difference `∂f/∂x = f|ₓ₌₁ ⊕ f|ₓ₌₀`.
    ///
    /// `∂f/∂x` is 1 exactly on the assignments of the remaining variables
    /// where a transition of `x` propagates to `f` — the quantity Najm's
    /// transition density is built on.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    #[must_use]
    pub fn boolean_difference(&self, var: usize) -> Self {
        self.cofactor(var, true).xor(&self.cofactor(var, false))
    }

    /// Returns `true` if the function is constant 0.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if the function is constant 1.
    pub fn is_one(&self) -> bool {
        *self == Self::one(self.nvars)
    }

    /// Returns `true` if the function actually depends on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    pub fn depends_on(&self, var: usize) -> bool {
        !self.boolean_difference(var).is_zero()
    }

    /// The set of variables the function depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.nvars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Number of satisfying assignments (minterms).
    pub fn count_minterms(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Iterator over the indices of satisfying minterms.
    pub fn minterms(&self) -> impl Iterator<Item = usize> + '_ {
        (0..(1usize << self.nvars)).filter(move |&m| self.eval_minterm(m))
    }

    /// Re-expresses the function over a larger variable set (the new
    /// variables are don't-cares).
    ///
    /// # Panics
    ///
    /// Panics if `new_nvars < nvars` or `new_nvars > MAX_VARS`.
    #[must_use]
    pub fn extend_to(&self, new_nvars: usize) -> Self {
        assert!(
            new_nvars >= self.nvars,
            "cannot shrink a function with extend_to"
        );
        if new_nvars == self.nvars {
            return self.clone();
        }
        let old = self;
        BoolFn::from_fn(new_nvars, |assignment| {
            let mut m = 0usize;
            for (i, &v) in assignment.iter().take(old.nvars).enumerate() {
                if v {
                    m |= 1 << i;
                }
            }
            old.eval_minterm(m)
        })
    }

    /// Re-expresses the function over the ordered variable subset `vars`:
    /// variable `j` of the result is variable `vars[j]` of `self`.
    ///
    /// Used to shrink a function's truth table to its [`BoolFn::support`]
    /// before compiling it into a leaf table — the payoff is exponential
    /// in the number of dropped variables.
    ///
    /// # Panics
    ///
    /// Panics if `vars` has repeats or out-of-range indices, or if the
    /// function depends on a variable outside `vars`.
    #[must_use]
    pub fn project_onto(&self, vars: &[usize]) -> Self {
        let mut seen = [false; MAX_VARS];
        for &v in vars {
            assert!(v < self.nvars, "variable index {v} out of range");
            assert!(!seen[v], "repeated variable {v}");
            seen[v] = true;
        }
        for v in self.support() {
            assert!(seen[v], "function depends on unlisted variable {v}");
        }
        BoolFn::from_fn(vars.len(), |assignment| {
            let mut m = 0usize;
            for (j, &v) in vars.iter().enumerate() {
                if assignment[j] {
                    m |= 1 << v;
                }
            }
            self.eval_minterm(m)
        })
    }

    /// Composes the function: substitute each variable `i` with `subs[i]`.
    ///
    /// All substituted functions must share one arity, which becomes the
    /// arity of the result. Used to express a gate output in terms of
    /// circuit primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if `subs.len() != nvars` or the substitutions disagree on
    /// arity.
    #[must_use]
    pub fn compose(&self, subs: &[BoolFn]) -> Self {
        assert_eq!(subs.len(), self.nvars, "one substitution per variable");
        if subs.is_empty() {
            return if self.is_one() {
                BoolFn::one(0)
            } else {
                BoolFn::zero(0)
            };
        }
        let target = subs[0].nvars;
        for s in subs {
            assert_eq!(s.nvars, target, "substitutions must share an arity");
        }
        let mut out = BoolFn::zero(target);
        // Shannon-style evaluation over the target space.
        for m in 0..(1usize << target) {
            let mut inner = 0usize;
            for (i, s) in subs.iter().enumerate() {
                if s.eval_minterm(m) {
                    inner |= 1 << i;
                }
            }
            if self.eval_minterm(inner) {
                out.words[m >> 6] |= 1 << (m & 63);
            }
        }
        out
    }
}

impl fmt::Debug for BoolFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BoolFn({} vars; 0x", self.nvars)?;
        for w in self.words.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for BoolFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        if self.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for m in self.minterms() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            for v in 0..self.nvars {
                if (m >> v) & 1 == 1 {
                    write!(f, "x{v}")?;
                } else {
                    write!(f, "x{v}'")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        for n in 0..=8 {
            assert!(BoolFn::zero(n).is_zero());
            assert!(BoolFn::one(n).is_one());
            assert_eq!(BoolFn::one(n).count_minterms(), 1u64 << n);
            assert_eq!(BoolFn::zero(n).count_minterms(), 0);
        }
    }

    #[test]
    fn var_projection_small_and_large() {
        for n in [1, 3, 6, 7, 9] {
            for v in 0..n {
                let f = BoolFn::var(n, v);
                assert_eq!(f.count_minterms(), 1u64 << (n - 1));
                for m in 0..(1usize << n) {
                    assert_eq!(f.eval_minterm(m), (m >> v) & 1 == 1, "n={n} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn demorgan() {
        let a = BoolFn::var(4, 0);
        let b = BoolFn::var(4, 3);
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
    }

    #[test]
    fn arity_mismatch_is_error() {
        let a = BoolFn::var(2, 0);
        let b = BoolFn::var(3, 0);
        assert_eq!(a.try_and(&b), Err(ArityError { left: 2, right: 3 }));
    }

    #[test]
    fn cofactor_small_vars() {
        // f = a·b + c over 3 vars
        let a = BoolFn::var(3, 0);
        let b = BoolFn::var(3, 1);
        let c = BoolFn::var(3, 2);
        let f = a.and(&b).or(&c);
        let f_c1 = f.cofactor(2, true);
        assert!(f_c1.is_one());
        let f_c0 = f.cofactor(2, false);
        assert_eq!(f_c0, a.and(&b));
        // Cofactor removes dependence.
        assert!(!f_c0.depends_on(2));
    }

    #[test]
    fn cofactor_large_vars() {
        // 8 variables, cofactor on var 7 (block-level path).
        let f = BoolFn::from_fn(8, |a| (a[7] && a[0]) || (!a[7] && a[1]));
        let hi = f.cofactor(7, true);
        let lo = f.cofactor(7, false);
        assert_eq!(hi, BoolFn::var(8, 0));
        assert_eq!(lo, BoolFn::var(8, 1));
    }

    #[test]
    fn boolean_difference_of_and() {
        let a = BoolFn::var(2, 0);
        let b = BoolFn::var(2, 1);
        let f = a.and(&b);
        // ∂(ab)/∂a = b
        assert_eq!(f.boolean_difference(0), b);
        assert_eq!(f.boolean_difference(1), a);
    }

    #[test]
    fn boolean_difference_of_xor_is_one() {
        let a = BoolFn::var(2, 0);
        let b = BoolFn::var(2, 1);
        let f = a.xor(&b);
        assert!(f.boolean_difference(0).is_one());
        assert!(f.boolean_difference(1).is_one());
    }

    #[test]
    fn support_detects_fake_dependence() {
        // f = a ⊕ a = 0 has empty support even if built from var 0.
        let a = BoolFn::var(3, 0);
        let f = a.xor(&a);
        assert!(f.support().is_empty());
        let g = a.and(&BoolFn::var(3, 2));
        assert_eq!(g.support(), vec![0, 2]);
    }

    #[test]
    fn from_minterms_roundtrip() {
        let f = BoolFn::from_minterms(3, &[0, 5, 7]);
        let got: Vec<usize> = f.minterms().collect();
        assert_eq!(got, vec![0, 5, 7]);
        assert_eq!(f.count_minterms(), 3);
    }

    #[test]
    fn extend_keeps_semantics() {
        let f = BoolFn::var(2, 1).not();
        let g = f.extend_to(5);
        assert_eq!(g.nvars(), 5);
        for m in 0..32 {
            assert_eq!(g.eval_minterm(m), (m >> 1) & 1 == 0);
        }
    }

    #[test]
    fn project_onto_support() {
        // f = x1·x3 over 4 vars; projecting onto [1, 3] gives a0·a1.
        let f = BoolFn::var(4, 1).and(&BoolFn::var(4, 3));
        let g = f.project_onto(&[1, 3]);
        assert_eq!(g, BoolFn::var(2, 0).and(&BoolFn::var(2, 1)));
        // Order matters: [3, 1] swaps the roles.
        let h = f.project_onto(&[3, 1]);
        assert_eq!(h, BoolFn::var(2, 1).and(&BoolFn::var(2, 0)));
    }

    #[test]
    fn project_onto_rejects_missing_support() {
        let f = BoolFn::var(3, 2);
        let r = std::panic::catch_unwind(|| f.project_onto(&[0, 1]));
        assert!(r.is_err());
    }

    #[test]
    fn compose_substitutes() {
        // f(x0,x1) = x0·x1, substitute x0 := a+b, x1 := c (3-var space)
        let f = BoolFn::var(2, 0).and(&BoolFn::var(2, 1));
        let a_or_b = BoolFn::var(3, 0).or(&BoolFn::var(3, 1));
        let c = BoolFn::var(3, 2);
        let g = f.compose(&[a_or_b.clone(), c.clone()]);
        assert_eq!(g, a_or_b.and(&c));
    }

    #[test]
    fn compose_zero_arity() {
        let t = BoolFn::one(0);
        assert!(t.compose(&[]).is_one());
    }

    #[test]
    fn eval_matches_minterm_indexing() {
        let f = BoolFn::from_fn(4, |a| a[0] ^ (a[1] && a[3]));
        assert_eq!(
            f.eval(&[true, true, false, true]),
            f.eval_minterm(0b1011usize)
        );
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(format!("{}", BoolFn::zero(2)), "0");
        assert_eq!(format!("{}", BoolFn::one(2)), "1");
        let s = format!("{}", BoolFn::var(2, 0));
        assert!(s.contains("x0"));
    }
}
