//! Signal probability and transition-density propagation.
//!
//! Two classic results underpin the power model:
//!
//! * **Parker–McCluskey (1975)**: with statistically independent inputs,
//!   the probability that a Boolean function evaluates to 1 is the sum over
//!   its minterms of the product of per-input probabilities. [`probability`]
//!   computes this exactly from the truth table.
//! * **Najm (DAC 1991)**: the *transition density* of an output is
//!   `D(y) = Σᵢ P(∂y/∂xᵢ)·D(xᵢ)`, where `∂y/∂xᵢ` is the Boolean
//!   difference. [`density`] computes this exactly (again under input
//!   independence), and [`propagate`] bundles both into a [`SignalStats`].

use crate::{BoolFn, SignalStats};

/// Exact probability that `f = 1` given independent input probabilities.
///
/// Runs in `O(2ⁿ·n)` over the truth table — instantaneous for cell-sized
/// functions and still fast at the [`crate::MAX_VARS`] limit.
///
/// # Panics
///
/// Panics if `probs.len() != f.nvars()`.
///
/// # Example
///
/// ```
/// use tr_boolean::{BoolFn, prob};
/// let a = BoolFn::var(2, 0);
/// let b = BoolFn::var(2, 1);
/// // P(a·b) = P(a)·P(b) for independent inputs
/// assert!((prob::probability(&a.and(&b), &[0.3, 0.5]) - 0.15).abs() < 1e-12);
/// ```
pub fn probability(f: &BoolFn, probs: &[f64]) -> f64 {
    assert_eq!(
        probs.len(),
        f.nvars(),
        "need one probability per function input"
    );
    // Accumulate by Shannon expansion on the last variable to halve work,
    // but the straightforward minterm walk is clear and fast enough.
    let mut total = 0.0;
    for m in f.minterms() {
        let mut term = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            term *= if (m >> i) & 1 == 1 { p } else { 1.0 - p };
        }
        total += term;
    }
    // Clamp tiny negative / >1 float residue.
    total.clamp(0.0, 1.0)
}

/// Compiles a function into its dense multilinear *leaf table*: entry `m`
/// is `1.0` when minterm `m` satisfies `f` and `0.0` otherwise.
///
/// This is the build-time half of the compiled probability kernel: pair it
/// with [`probability_leaves`], which evaluates the multilinear extension
/// by a Shannon fold over the table instead of walking minterms.
pub fn leaf_table(f: &BoolFn) -> Vec<f64> {
    (0..(1usize << f.nvars()))
        .map(|m| if f.eval_minterm(m) { 1.0 } else { 0.0 })
        .collect()
}

/// Allocation-free probability evaluation over a precompiled leaf table.
///
/// Computes the same multilinear extension as [`probability`] — the exact
/// Parker–McCluskey probability under input independence — but by a
/// Shannon fold: variable 0 is eliminated first by convex combination of
/// adjacent leaves, then variable 1, and so on, for `O(2ⁿ)` work instead
/// of the `O(2ⁿ·n)` minterm walk, with no heap allocation. Because every
/// fold step is a convex combination of values in `[0, 1]`, the result is
/// in `[0, 1]` by construction (no clamping needed); it can differ from
/// [`probability`] only by floating-point rounding (≲ 1e-15 relative for
/// cell-sized functions).
///
/// `scratch` is caller-provided working storage of at least `leaves.len()`
/// entries; its prior contents are ignored.
///
/// `tr-power`'s compiled kernel runs a specialized copy of this fold
/// (arena-direct first level, support-permuted variable gather); this
/// function is the readable reference form of the algorithm.
///
/// # Panics
///
/// Panics if `leaves.len() != 2^probs.len()` or `scratch` is too short.
///
/// # Example
///
/// ```
/// use tr_boolean::{prob, BoolFn};
/// let f = BoolFn::var(2, 0).and(&BoolFn::var(2, 1));
/// let leaves = prob::leaf_table(&f);
/// let mut scratch = [0.0; 4];
/// let p = prob::probability_leaves(&leaves, &[0.3, 0.5], &mut scratch);
/// assert!((p - 0.15).abs() < 1e-15);
/// ```
pub fn probability_leaves(leaves: &[f64], probs: &[f64], scratch: &mut [f64]) -> f64 {
    assert_eq!(
        leaves.len(),
        1usize << probs.len(),
        "leaf table must have one entry per minterm"
    );
    assert!(scratch.len() >= leaves.len(), "scratch too short");
    let mut width = leaves.len();
    scratch[..width].copy_from_slice(leaves);
    for &p in probs {
        width >>= 1;
        for i in 0..width {
            let lo = scratch[2 * i];
            let hi = scratch[2 * i + 1];
            scratch[i] = lo + p * (hi - lo);
        }
    }
    scratch[0]
}

/// Najm transition density of `f` given per-input `(P, D)` statistics.
///
/// `D(f) = Σᵢ P(∂f/∂xᵢ)·D(xᵢ)` — every input transition propagates to the
/// output exactly when the Boolean difference with respect to that input is
/// satisfied by the remaining inputs.
///
/// # Panics
///
/// Panics if `inputs.len() != f.nvars()`.
pub fn density(f: &BoolFn, inputs: &[SignalStats]) -> f64 {
    assert_eq!(
        inputs.len(),
        f.nvars(),
        "need one SignalStats per function input"
    );
    let probs: Vec<f64> = inputs.iter().map(SignalStats::probability).collect();
    let mut d = 0.0;
    for (i, s) in inputs.iter().enumerate() {
        if s.density() == 0.0 {
            continue;
        }
        let diff = f.boolean_difference(i);
        if diff.is_zero() {
            continue;
        }
        d += probability(&diff, &probs) * s.density();
    }
    d
}

/// Propagates both probability and density through `f`.
///
/// # Panics
///
/// Panics if `inputs.len() != f.nvars()`.
pub fn propagate(f: &BoolFn, inputs: &[SignalStats]) -> SignalStats {
    let probs: Vec<f64> = inputs.iter().map(SignalStats::probability).collect();
    let p = probability(f, &probs);
    let d = density(f, inputs);
    SignalStats::new(p, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(p: f64, d: f64) -> SignalStats {
        SignalStats::new(p, d)
    }

    #[test]
    fn probability_of_constants() {
        assert_eq!(probability(&BoolFn::zero(3), &[0.1, 0.2, 0.3]), 0.0);
        assert_eq!(probability(&BoolFn::one(3), &[0.1, 0.2, 0.3]), 1.0);
    }

    #[test]
    fn leaves_match_minterm_walk() {
        // The Shannon fold and the minterm walk are the same multilinear
        // polynomial; spot-check on an asymmetric 4-input function.
        let f = BoolFn::from_fn(4, |a| (a[0] && a[1]) ^ (a[2] || !a[3]));
        let leaves = leaf_table(&f);
        let mut scratch = [0.0; 16];
        let probs = [0.13, 0.57, 0.92, 0.31];
        let fast = probability_leaves(&leaves, &probs, &mut scratch);
        let slow = probability(&f, &probs);
        assert!((fast - slow).abs() < 1e-14, "{fast} vs {slow}");
    }

    #[test]
    fn leaves_of_constants() {
        let mut scratch = [0.0; 8];
        let one = leaf_table(&BoolFn::one(3));
        assert_eq!(
            probability_leaves(&one, &[0.2, 0.4, 0.9], &mut scratch),
            1.0
        );
        let zero = leaf_table(&BoolFn::zero(3));
        assert_eq!(
            probability_leaves(&zero, &[0.2, 0.4, 0.9], &mut scratch),
            0.0
        );
    }

    #[test]
    fn leaves_result_stays_in_unit_interval() {
        let f = BoolFn::from_fn(3, |a| a[0] ^ a[1] ^ a[2]);
        let leaves = leaf_table(&f);
        let mut scratch = [0.0; 8];
        for p in [0.0, 1e-18, 0.5, 1.0 - 1e-16, 1.0] {
            let v = probability_leaves(&leaves, &[p, p, p], &mut scratch);
            assert!((0.0..=1.0).contains(&v), "p={p} gave {v}");
        }
    }

    #[test]
    fn probability_of_or_inclusion_exclusion() {
        let f = BoolFn::var(2, 0).or(&BoolFn::var(2, 1));
        let p = probability(&f, &[0.3, 0.4]);
        assert!((p - (0.3 + 0.4 - 0.12)).abs() < 1e-12);
    }

    #[test]
    fn density_of_inverter_passes_through() {
        let f = BoolFn::var(1, 0).not();
        let d = density(&f, &[stats(0.7, 5.0)]);
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn density_of_nand_matches_hand_calc() {
        // D(nand(a,b)) = P(b)·D(a) + P(a)·D(b)
        let f = BoolFn::var(2, 0).and(&BoolFn::var(2, 1)).not();
        let d = density(&f, &[stats(0.2, 3.0), stats(0.9, 7.0)]);
        assert!((d - (0.9 * 3.0 + 0.2 * 7.0)).abs() < 1e-12);
    }

    #[test]
    fn density_of_xor_sums_inputs() {
        // ∂(a⊕b)/∂a = ∂(a⊕b)/∂b = 1, so densities add regardless of P.
        let f = BoolFn::var(2, 0).xor(&BoolFn::var(2, 1));
        let d = density(&f, &[stats(0.13, 3.0), stats(0.87, 7.0)]);
        assert!((d - 10.0).abs() < 1e-12);
    }

    #[test]
    fn constant_function_has_zero_density() {
        let f = BoolFn::one(2);
        assert_eq!(density(&f, &[stats(0.5, 10.0), stats(0.5, 10.0)]), 0.0);
    }

    #[test]
    fn propagate_bundles_both() {
        let f = BoolFn::var(2, 0).and(&BoolFn::var(2, 1));
        let out = propagate(&f, &[stats(0.5, 2.0), stats(0.5, 2.0)]);
        assert!((out.probability() - 0.25).abs() < 1e-12);
        assert!((out.density() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quiescent_inputs_produce_quiescent_output() {
        let f = BoolFn::var(2, 0).or(&BoolFn::var(2, 1));
        let out = propagate(
            &f,
            &[SignalStats::constant(true), SignalStats::constant(false)],
        );
        assert_eq!(out.density(), 0.0);
        assert_eq!(out.probability(), 1.0);
    }
}
