//! Boolean expression trees.
//!
//! [`Expr`] is the human-facing companion of [`BoolFn`]: cell logic
//! functions are *defined* as expressions, and extracted path functions are
//! *rendered* as expressions. Evaluation lowers an expression to a dense
//! [`BoolFn`].

use crate::BoolFn;
use std::fmt;

/// A Boolean expression over numbered variables.
///
/// # Example
///
/// The OAI21 function `y = ¬((a₁+a₂)·b)` from the paper's Fig. 1:
///
/// ```
/// use tr_boolean::Expr;
///
/// let y = Expr::not(Expr::and(vec![
///     Expr::or(vec![Expr::var(0), Expr::var(1)]),
///     Expr::var(2),
/// ]));
/// let f = y.to_boolfn(3);
/// assert!(f.eval(&[false, false, false])); // pull-down off -> 1
/// assert!(!f.eval(&[true, false, true]));
/// assert_eq!(y.render(&["a1", "a2", "b"]), "!((a1 + a2)·b)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant.
    Const(bool),
    /// Variable reference by index.
    Var(usize),
    /// Logical complement.
    Not(Box<Expr>),
    /// Conjunction of one or more terms.
    And(Vec<Expr>),
    /// Disjunction of one or more terms.
    Or(Vec<Expr>),
}

impl Expr {
    /// Constant `true`/`false`.
    pub fn constant(v: bool) -> Self {
        Expr::Const(v)
    }

    /// Variable `i`.
    pub fn var(i: usize) -> Self {
        Expr::Var(i)
    }

    /// Complement of `e`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Self {
        Expr::Not(Box::new(e))
    }

    /// Conjunction of `terms`.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty; use [`Expr::constant`] for constants.
    pub fn and(terms: Vec<Expr>) -> Self {
        assert!(!terms.is_empty(), "Expr::and needs at least one term");
        Expr::And(terms)
    }

    /// Disjunction of `terms`.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty; use [`Expr::constant`] for constants.
    pub fn or(terms: Vec<Expr>) -> Self {
        assert!(!terms.is_empty(), "Expr::or needs at least one term");
        Expr::Or(terms)
    }

    /// Largest variable index referenced, plus one (0 for constant
    /// expressions).
    pub fn min_nvars(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(i) => i + 1,
            Expr::Not(e) => e.min_nvars(),
            Expr::And(ts) | Expr::Or(ts) => ts.iter().map(Expr::min_nvars).max().unwrap_or(0),
        }
    }

    /// Lowers the expression to a truth table over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if the expression references a variable `>= nvars` or
    /// `nvars > MAX_VARS`.
    pub fn to_boolfn(&self, nvars: usize) -> BoolFn {
        match self {
            Expr::Const(true) => BoolFn::one(nvars),
            Expr::Const(false) => BoolFn::zero(nvars),
            Expr::Var(i) => BoolFn::var(nvars, *i),
            Expr::Not(e) => e.to_boolfn(nvars).not(),
            Expr::And(ts) => {
                let mut acc = BoolFn::one(nvars);
                for t in ts {
                    acc = acc.and(&t.to_boolfn(nvars));
                }
                acc
            }
            Expr::Or(ts) => {
                let mut acc = BoolFn::zero(nvars);
                for t in ts {
                    acc = acc.or(&t.to_boolfn(nvars));
                }
                acc
            }
        }
    }

    /// Evaluates against a concrete assignment (index = variable).
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable is out of range.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(i) => assignment[*i],
            Expr::Not(e) => !e.eval(assignment),
            Expr::And(ts) => ts.iter().all(|t| t.eval(assignment)),
            Expr::Or(ts) => ts.iter().any(|t| t.eval(assignment)),
        }
    }

    /// Renders with the given variable names.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable has no name.
    pub fn render(&self, names: &[&str]) -> String {
        fn go(e: &Expr, names: &[&str], parent_and: bool) -> String {
            match e {
                Expr::Const(v) => if *v { "1" } else { "0" }.to_string(),
                Expr::Var(i) => names[*i].to_string(),
                Expr::Not(inner) => match inner.as_ref() {
                    Expr::Var(i) => format!("!{}", names[*i]),
                    other => format!("!({})", go(other, names, false)),
                },
                Expr::And(ts) => ts
                    .iter()
                    .map(|t| go(t, names, true))
                    .collect::<Vec<_>>()
                    .join("·"),
                Expr::Or(ts) => {
                    let body = ts
                        .iter()
                        .map(|t| go(t, names, false))
                        .collect::<Vec<_>>()
                        .join(" + ");
                    if parent_and {
                        format!("({body})")
                    } else {
                        body
                    }
                }
            }
        }
        go(self, names, false)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.min_nvars();
        let names: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        write!(f, "{}", self.render(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oai21_truth_table() {
        let y = Expr::not(Expr::and(vec![
            Expr::or(vec![Expr::var(0), Expr::var(1)]),
            Expr::var(2),
        ]));
        let f = y.to_boolfn(3);
        for m in 0..8usize {
            let a1 = m & 1 == 1;
            let a2 = (m >> 1) & 1 == 1;
            let b = (m >> 2) & 1 == 1;
            assert_eq!(f.eval_minterm(m), !((a1 || a2) && b));
        }
    }

    #[test]
    fn eval_matches_boolfn() {
        let e = Expr::or(vec![
            Expr::and(vec![Expr::var(0), Expr::not(Expr::var(1))]),
            Expr::var(2),
        ]);
        let f = e.to_boolfn(3);
        for m in 0..8usize {
            let assignment = [m & 1 == 1, (m >> 1) & 1 == 1, (m >> 2) & 1 == 1];
            assert_eq!(e.eval(&assignment), f.eval(&assignment));
        }
    }

    #[test]
    fn render_parenthesizes_or_under_and() {
        let e = Expr::and(vec![
            Expr::or(vec![Expr::var(0), Expr::var(1)]),
            Expr::not(Expr::var(2)),
        ]);
        assert_eq!(e.render(&["a", "b", "c"]), "(a + b)·!c");
    }

    #[test]
    fn display_uses_default_names() {
        let e = Expr::or(vec![Expr::var(0), Expr::var(3)]);
        assert_eq!(format!("{e}"), "x0 + x3");
    }

    #[test]
    fn min_nvars() {
        assert_eq!(Expr::constant(true).min_nvars(), 0);
        assert_eq!(Expr::var(4).min_nvars(), 5);
    }
}
