//! Cooperative run governance: cancellation tokens, deadlines, and the
//! typed [`Interrupted`] error every governed loop in the workspace
//! returns instead of running unbounded.
//!
//! The primitives live here — in the workspace's foundation crate — so
//! the BDD manager, the reorder optimizers, the event-driven simulator
//! and the Monte Carlo estimator can all check the *same* [`Governor`]
//! without a dependency cycle; `tr_flow::govern` re-exports them next
//! to the flow-level `RunBudget`.
//!
//! Checks are amortized: a governed loop calls [`Governor::check`] once
//! per unit of work (a node allocation, a pair-graph visit, a simulator
//! event, a Monte Carlo step) and the governor consults the clock and
//! the cancellation flag only every [`CHECK_PERIOD`] calls — one relaxed
//! atomic increment and a branch otherwise, cheap enough for the hot
//! paths it guards.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many [`Governor::check`] calls pass between real clock/flag
/// inspections (~4k, so a tripped deadline or token is noticed within a
/// few thousand node allocations or simulator events).
pub const CHECK_PERIOD: u64 = 4096;

/// A shared cancellation flag: cloneable, thread-safe, sticky.
///
/// Cancelling is a one-way latch — every [`Governor`] holding a clone
/// observes it at its next amortized check and returns [`Interrupted`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Latches the token; every holder observes it on its next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a governed run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripReason {
    /// The shared [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-unit trip point (fault injection /
    /// [`Governor::with_trip_after`]) was reached.
    WorkLimit,
}

impl TripReason {
    /// The report spelling (`cancelled`, `deadline`, `work-limit`).
    pub fn as_str(&self) -> &'static str {
        match self {
            TripReason::Cancelled => "cancelled",
            TripReason::Deadline => "deadline",
            TripReason::WorkLimit => "work-limit",
        }
    }
}

/// The typed early-termination error of every governed loop: which
/// phase was interrupted, why, how long it had run, and how much work
/// it had done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// The governed phase that observed the trip (`"bdd"`,
    /// `"optimize"`, `"fixpoint"`, `"simulate"`, `"monte"`, …).
    pub phase: &'static str,
    /// Why the run stopped.
    pub reason: TripReason,
    /// Wall-clock time since the governor started.
    pub elapsed: Duration,
    /// Work units ([`Governor::check`] calls) completed before the trip.
    pub work_done: u64,
}

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} interrupted ({}) after {:.1} ms and {} work units",
            self.phase,
            self.reason.as_str(),
            self.elapsed.as_secs_f64() * 1e3,
            self.work_done
        )
    }
}

impl std::error::Error for Interrupted {}

#[derive(Debug)]
struct Inner {
    cancel: CancelToken,
    started: Instant,
    deadline: Option<Instant>,
    /// Trip unconditionally once this many work units have passed —
    /// the deterministic cancellation point fault injection and the
    /// cancellation-safety proptests rely on (wall clocks are not
    /// reproducible; work counts are).
    trip_after: Option<u64>,
    work: AtomicU64,
}

/// An amortized deadline/cancellation checker shared by every governed
/// loop of one run. Cheap to clone (one `Arc`); clones share the work
/// counter, the deadline and the token.
///
/// # Example
///
/// ```
/// use tr_boolean::govern::{Governor, TripReason};
///
/// let gov = Governor::unbounded();
/// assert!(gov.check("demo").is_ok());
/// gov.token().cancel();
/// let err = gov.check_now("demo").unwrap_err();
/// assert_eq!(err.reason, TripReason::Cancelled);
/// ```
#[derive(Debug, Clone)]
pub struct Governor {
    inner: Arc<Inner>,
}

impl Governor {
    /// A governor with an optional deadline (measured from now) and a
    /// fresh cancellation token.
    pub fn new(deadline: Option<Duration>) -> Self {
        Governor::with_token(CancelToken::new(), deadline)
    }

    /// A governor observing a caller-owned token, with an optional
    /// deadline measured from now.
    pub fn with_token(cancel: CancelToken, deadline: Option<Duration>) -> Self {
        let started = Instant::now();
        Governor {
            inner: Arc::new(Inner {
                cancel,
                started,
                deadline: deadline.map(|d| started + d),
                trip_after: None,
                work: AtomicU64::new(0),
            }),
        }
    }

    /// A governor with no deadline (cancellable via its token only).
    pub fn unbounded() -> Self {
        Governor::new(None)
    }

    /// A governor that trips deterministically once `work` check calls
    /// have passed — the reproducible cancellation point used by fault
    /// injection and the cancellation-safety tests.
    pub fn with_trip_after(work: u64) -> Self {
        let started = Instant::now();
        Governor {
            inner: Arc::new(Inner {
                cancel: CancelToken::new(),
                started,
                deadline: None,
                trip_after: Some(work),
                work: AtomicU64::new(0),
            }),
        }
    }

    /// The shared cancellation token (clone it into other threads; the
    /// governor observes [`CancelToken::cancel`] at its next check).
    pub fn token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Wall-clock time since the governor was created.
    pub fn elapsed(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// Work units counted so far (one per [`Governor::check`]).
    pub fn work_done(&self) -> u64 {
        self.inner.work.load(Ordering::Relaxed)
    }

    /// Whether the shared token has been cancelled.
    pub fn cancelled(&self) -> bool {
        self.inner.cancel.is_cancelled()
    }

    /// Whether the wall-clock deadline (if any) has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Records one unit of work and, every [`CHECK_PERIOD`] units,
    /// consults the token, the deadline and the trip point. The hot-path
    /// cost is one relaxed atomic increment and a branch.
    ///
    /// # Errors
    ///
    /// Returns [`Interrupted`] (tagged with `phase`) once the token is
    /// cancelled, the deadline passes, or the trip point is reached.
    #[inline]
    pub fn check(&self, phase: &'static str) -> Result<(), Interrupted> {
        let work = self.inner.work.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(t) = self.inner.trip_after {
            if work > t {
                return Err(self.interrupted(phase, TripReason::WorkLimit));
            }
        }
        if !work.is_multiple_of(CHECK_PERIOD) {
            return Ok(());
        }
        self.check_now(phase)
    }

    /// Consults the token and the deadline immediately (no
    /// amortization) — for loop *boundaries* (between fixpoint
    /// iterations, between per-net density walks) where a check is
    /// cheap relative to the work it gates.
    ///
    /// # Errors
    ///
    /// As [`Governor::check`].
    pub fn check_now(&self, phase: &'static str) -> Result<(), Interrupted> {
        if let Some(t) = self.inner.trip_after {
            if self.work_done() > t {
                return Err(self.interrupted(phase, TripReason::WorkLimit));
            }
        }
        if self.cancelled() {
            return Err(self.interrupted(phase, TripReason::Cancelled));
        }
        if self.deadline_exceeded() {
            return Err(self.interrupted(phase, TripReason::Deadline));
        }
        Ok(())
    }

    fn interrupted(&self, phase: &'static str, reason: TripReason) -> Interrupted {
        Interrupted {
            phase,
            reason,
            elapsed: self.elapsed(),
            work_done: self.work_done(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_governor_passes_checks() {
        let gov = Governor::unbounded();
        for _ in 0..3 * CHECK_PERIOD {
            gov.check("test").unwrap();
        }
        assert_eq!(gov.work_done(), 3 * CHECK_PERIOD);
        assert!(!gov.cancelled());
    }

    #[test]
    fn cancellation_is_observed_within_one_period() {
        let gov = Governor::unbounded();
        gov.token().cancel();
        let mut tripped = None;
        for i in 0..2 * CHECK_PERIOD {
            if let Err(e) = gov.check("test") {
                tripped = Some((i, e));
                break;
            }
        }
        let (i, e) = tripped.expect("cancel must be observed");
        assert!(i < CHECK_PERIOD, "observed after {i} checks");
        assert_eq!(e.reason, TripReason::Cancelled);
        assert_eq!(e.phase, "test");
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let gov = Governor::new(Some(Duration::ZERO));
        let e = gov.check_now("test").unwrap_err();
        assert_eq!(e.reason, TripReason::Deadline);
        assert!(gov.deadline_exceeded());
    }

    #[test]
    fn trip_after_is_deterministic() {
        let n = 100u64;
        let gov = Governor::with_trip_after(n);
        for _ in 0..n {
            gov.check("test").unwrap();
        }
        let e = gov.check("test").unwrap_err();
        assert_eq!(e.reason, TripReason::WorkLimit);
        assert_eq!(e.work_done, n + 1);
    }

    #[test]
    fn clones_share_the_counter_and_token() {
        let gov = Governor::unbounded();
        let clone = gov.clone();
        clone.check("test").unwrap();
        assert_eq!(gov.work_done(), 1);
        gov.token().cancel();
        assert!(clone.cancelled());
    }

    #[test]
    fn interrupted_displays_its_fields() {
        let e = Interrupted {
            phase: "bdd",
            reason: TripReason::Deadline,
            elapsed: Duration::from_millis(50),
            work_done: 12345,
        };
        let s = e.to_string();
        assert!(s.contains("bdd"), "{s}");
        assert!(s.contains("deadline"), "{s}");
        assert!(s.contains("12345"), "{s}");
    }
}
