//! Signal statistics: the `(P, D)` pair of the stochastic signal model.

use std::fmt;

/// Error constructing a [`SignalStats`] from invalid numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsError {
    /// Probability outside `[0, 1]` or NaN.
    InvalidProbability(f64),
    /// Negative or NaN density.
    InvalidDensity(f64),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidProbability(p) => {
                write!(f, "equilibrium probability {p} not in [0, 1]")
            }
            StatsError::InvalidDensity(d) => write!(f, "transition density {d} is negative"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Equilibrium probability and transition density of a logic signal.
///
/// Every signal is modeled as a 0–1 stationary Markov process (paper §3.1):
/// `P` is the probability of observing a 1 at any instant, `D` is the
/// average number of transitions per time unit. The time unit is
/// *seconds* in Scenario A and *clock cycles* in Scenario B; the model is
/// agnostic as long as usage is consistent.
///
/// # Example
///
/// ```
/// use tr_boolean::SignalStats;
///
/// let s = SignalStats::new(0.5, 1.0e6); // 1M transitions/second
/// assert_eq!(s.probability(), 0.5);
/// assert_eq!(s.density(), 1.0e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalStats {
    p: f64,
    d: f64,
}

impl SignalStats {
    /// Creates signal statistics, validating both fields.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0,1]` or `d < 0` (or either is NaN). Use
    /// [`SignalStats::try_new`] for a fallible constructor.
    pub fn new(p: f64, d: f64) -> Self {
        Self::try_new(p, d).expect("invalid signal statistics")
    }

    /// Fallible counterpart of [`SignalStats::new`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if `p ∉ [0,1]` or `d < 0` (or either is NaN).
    pub fn try_new(p: f64, d: f64) -> Result<Self, StatsError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidProbability(p));
        }
        if d.is_nan() || d < 0.0 {
            return Err(StatsError::InvalidDensity(d));
        }
        Ok(SignalStats { p, d })
    }

    /// A quiescent signal stuck at the given logic value.
    pub fn constant(value: bool) -> Self {
        SignalStats {
            p: if value { 1.0 } else { 0.0 },
            d: 0.0,
        }
    }

    /// The equilibrium probability `P(x)`.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// The transition density `D(x)` (transitions per time unit).
    pub fn density(&self) -> f64 {
        self.d
    }

    /// Mean dwell times `(t₀, t₁)` of the equivalent alternating renewal
    /// process (used by the switch-level simulator's waveform generator).
    ///
    /// A cycle 0→1→0 contains two transitions, so `D = 2/(t₀+t₁)` and
    /// `P = t₁/(t₀+t₁)`, giving `t₁ = 2P/D` and `t₀ = 2(1−P)/D`.
    ///
    /// Returns `None` for quiescent signals (`D = 0`) or signals pinned at
    /// a rail (`P` of exactly 0 or 1 with `D > 0` is not realizable).
    pub fn dwell_times(&self) -> Option<(f64, f64)> {
        if self.d <= 0.0 || self.p <= 0.0 || self.p >= 1.0 {
            return None;
        }
        Some((2.0 * (1.0 - self.p) / self.d, 2.0 * self.p / self.d))
    }
}

impl Default for SignalStats {
    /// The paper's Scenario B default: `P = 0.5`, `D = 0.5`
    /// transitions/cycle.
    fn default() -> Self {
        SignalStats { p: 0.5, d: 0.5 }
    }
}

impl fmt::Display for SignalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(P={:.4}, D={:.4})", self.p, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_probability() {
        assert!(matches!(
            SignalStats::try_new(1.5, 0.0),
            Err(StatsError::InvalidProbability(_))
        ));
        assert!(matches!(
            SignalStats::try_new(f64::NAN, 0.0),
            Err(StatsError::InvalidProbability(_))
        ));
    }

    #[test]
    fn rejects_bad_density() {
        assert!(matches!(
            SignalStats::try_new(0.5, -1.0),
            Err(StatsError::InvalidDensity(_))
        ));
        assert!(matches!(
            SignalStats::try_new(0.5, f64::NAN),
            Err(StatsError::InvalidDensity(_))
        ));
    }

    #[test]
    fn dwell_times_invert_to_stats() {
        let s = SignalStats::new(0.25, 4.0);
        let (t0, t1) = s.dwell_times().unwrap();
        let d = 2.0 / (t0 + t1);
        let p = t1 / (t0 + t1);
        assert!((d - 4.0).abs() < 1e-12);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn quiescent_has_no_dwell() {
        assert!(SignalStats::constant(true).dwell_times().is_none());
        assert!(SignalStats::new(0.0, 3.0).dwell_times().is_none());
    }

    #[test]
    fn default_is_scenario_b() {
        let s = SignalStats::default();
        assert_eq!(s.probability(), 0.5);
        assert_eq!(s.density(), 0.5);
    }
}
