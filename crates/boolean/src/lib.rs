//! Boolean-function algebra for stochastic power analysis of CMOS gates.
//!
//! This crate is the mathematical substrate of the transistor-reordering
//! optimizer. It provides:
//!
//! * [`BoolFn`] — a dense truth-table representation of a Boolean function
//!   of up to [`MAX_VARS`] variables, with cofactors and the *Boolean
//!   difference* `∂f/∂x = f|ₓ₌₁ ⊕ f|ₓ₌₀` used throughout the power model;
//! * [`Expr`] — a small Boolean expression tree used to define cell
//!   functions and to pretty-print path functions;
//! * [`prob`] — exact signal probability under the input-independence
//!   assumption (Parker–McCluskey style) and Najm's transition-density
//!   propagation `D(y) = Σᵢ P(∂y/∂xᵢ)·D(xᵢ)`;
//! * [`SignalStats`] — the `(P, D)` pair (equilibrium probability,
//!   transition density) that characterizes every signal as a 0–1
//!   stationary Markov process.
//!
//! # Example
//!
//! Propagate probability and transition density through a 2-input NAND:
//!
//! ```
//! use tr_boolean::{BoolFn, SignalStats, prob};
//!
//! let a = BoolFn::var(2, 0);
//! let b = BoolFn::var(2, 1);
//! let y = a.and(&b).not();
//!
//! let inputs = [SignalStats::new(0.5, 2.0), SignalStats::new(0.5, 4.0)];
//! let out = prob::propagate(&y, &inputs);
//! assert!((out.probability() - 0.75).abs() < 1e-12);
//! // D(y) = P(b)·D(a) + P(a)·D(b) = 0.5·2 + 0.5·4 = 3
//! assert!((out.density() - 3.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expr;
mod func;
pub mod govern;
pub mod prob;
pub mod sop;
mod stats;

pub use expr::Expr;
pub use func::{ArityError, BoolFn, MAX_VARS};
pub use stats::{SignalStats, StatsError};
