//! Property-based tests for the Boolean algebra substrate.

use proptest::prelude::*;
use tr_boolean::{prob, BoolFn, SignalStats};

/// Strategy: an arbitrary function of `n` variables as a random minterm set.
fn arb_boolfn(n: usize) -> impl Strategy<Value = BoolFn> {
    prop::collection::vec(any::<bool>(), 1 << n).prop_map(move |bits| {
        BoolFn::from_fn(n, |a| {
            let mut m = 0usize;
            for (i, &v) in a.iter().enumerate() {
                if v {
                    m |= 1 << i;
                }
            }
            bits[m]
        })
    })
}

fn arb_probs(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, n)
}

proptest! {
    #[test]
    fn double_negation(f in arb_boolfn(4)) {
        prop_assert_eq!(f.not().not(), f);
    }

    #[test]
    fn and_or_absorption(f in arb_boolfn(4), g in arb_boolfn(4)) {
        // f + f·g = f  and  f·(f+g) = f
        prop_assert_eq!(f.or(&f.and(&g)), f.clone());
        prop_assert_eq!(f.and(&f.or(&g)), f);
    }

    #[test]
    fn xor_via_and_or(f in arb_boolfn(4), g in arb_boolfn(4)) {
        let alt = f.and(&g.not()).or(&f.not().and(&g));
        prop_assert_eq!(f.xor(&g), alt);
    }

    #[test]
    fn shannon_expansion(f in arb_boolfn(5), v in 0usize..5) {
        let x = BoolFn::var(5, v);
        let expansion = x.and(&f.cofactor(v, true)).or(&x.not().and(&f.cofactor(v, false)));
        prop_assert_eq!(expansion, f);
    }

    #[test]
    fn boolean_difference_symmetric_in_complement(f in arb_boolfn(4), v in 0usize..4) {
        // ∂f/∂x = ∂f̄/∂x
        prop_assert_eq!(f.boolean_difference(v), f.not().boolean_difference(v));
    }

    #[test]
    fn cofactor_removes_dependence(f in arb_boolfn(5), v in 0usize..5) {
        prop_assert!(!f.cofactor(v, true).depends_on(v));
        prop_assert!(!f.cofactor(v, false).depends_on(v));
    }

    #[test]
    fn probability_in_unit_interval(f in arb_boolfn(4), ps in arb_probs(4)) {
        let p = prob::probability(&f, &ps);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn probability_complement(f in arb_boolfn(4), ps in arb_probs(4)) {
        let p = prob::probability(&f, &ps);
        let q = prob::probability(&f.not(), &ps);
        prop_assert!((p + q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probability_monotone_in_function(f in arb_boolfn(4), g in arb_boolfn(4), ps in arb_probs(4)) {
        // P(f·g) <= P(f) <= P(f+g)
        let pf = prob::probability(&f, &ps);
        let pfg = prob::probability(&f.and(&g), &ps);
        let pfog = prob::probability(&f.or(&g), &ps);
        prop_assert!(pfg <= pf + 1e-9);
        prop_assert!(pf <= pfog + 1e-9);
    }

    #[test]
    fn probability_uniform_counts_minterms(f in arb_boolfn(4)) {
        let ps = vec![0.5; 4];
        let p = prob::probability(&f, &ps);
        let expected = f.count_minterms() as f64 / 16.0;
        prop_assert!((p - expected).abs() < 1e-9);
    }

    #[test]
    fn density_nonnegative_and_bounded(f in arb_boolfn(4), ps in arb_probs(4), ds in prop::collection::vec(0.0f64..10.0, 4)) {
        let inputs: Vec<SignalStats> = ps.iter().zip(&ds)
            .map(|(&p, &d)| SignalStats::new(p, d)).collect();
        let d = prob::density(&f, &inputs);
        let sum: f64 = ds.iter().sum();
        prop_assert!(d >= 0.0);
        // Each P(∂f/∂x) <= 1 so density can never exceed the input total.
        prop_assert!(d <= sum + 1e-9);
    }

    #[test]
    fn density_invariant_under_complement(f in arb_boolfn(4), ps in arb_probs(4), ds in prop::collection::vec(0.0f64..10.0, 4)) {
        let inputs: Vec<SignalStats> = ps.iter().zip(&ds)
            .map(|(&p, &d)| SignalStats::new(p, d)).collect();
        let d1 = prob::density(&f, &inputs);
        let d2 = prob::density(&f.not(), &inputs);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn compose_identity(f in arb_boolfn(4)) {
        let subs: Vec<BoolFn> = (0..4).map(|i| BoolFn::var(4, i)).collect();
        prop_assert_eq!(f.compose(&subs), f);
    }

    #[test]
    fn extend_preserves_probability(f in arb_boolfn(3), ps in arb_probs(3)) {
        let g = f.extend_to(6);
        let mut ps6 = ps.clone();
        ps6.extend([0.3, 0.7, 0.5]);
        let p3 = prob::probability(&f, &ps);
        let p6 = prob::probability(&g, &ps6);
        prop_assert!((p3 - p6).abs() < 1e-9);
    }
}

proptest! {
    #[test]
    fn sop_minimize_is_equivalent(f in arb_boolfn(4)) {
        let cover = tr_boolean::sop::minimize(&f);
        prop_assert_eq!(cover.to_boolfn(), f.clone());
        // Expr rendering agrees too.
        prop_assert_eq!(cover.to_expr().to_boolfn(4), f);
    }

    #[test]
    fn sop_minimize_no_larger_than_minterm_cover(f in arb_boolfn(4)) {
        let cover = tr_boolean::sop::minimize(&f);
        prop_assert!(cover.cubes().len() as u64 <= f.count_minterms().max(1));
    }
}
