//! SIGTERM/SIGINT latch for graceful drain.
//!
//! The workspace is offline (no `libc`/`signal-hook`), so this binds
//! `signal(2)` directly. The handler does the only async-signal-safe
//! thing possible — one atomic store — and a monitor thread inside the
//! server polls [`pending`] to start the drain. This module is the one
//! place the workspace allows `unsafe`: a single FFI declaration plus
//! the two registration calls.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod ffi {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        super::TERMINATE.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        // SAFETY: `signal(2)` with a handler that only performs an
        // atomic store is async-signal-safe; the prototype matches the
        // C declaration (the sighandler_t return is pointer-sized).
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Installs the SIGTERM/SIGINT handler (no-op off Unix). Idempotent.
pub fn install() {
    #[cfg(unix)]
    ffi::install();
}

/// Whether a termination signal has arrived since the last [`clear`].
pub fn pending() -> bool {
    TERMINATE.load(Ordering::SeqCst)
}

/// Resets the latch (tests, or a supervisor restarting the listener).
pub fn clear() {
    TERMINATE.store(false, Ordering::SeqCst);
}
