//! Typed request bodies for the JSON endpoints.
//!
//! Parsing is strict: unknown fields are usage errors (HTTP 400), and
//! the artifact-sink fields the CLI accepts (`out`, `vcd`, `trace`,
//! `write_netlist`) are rejected with a dedicated message — a daemon
//! writing per-request files on its own filesystem mirrors the
//! `BatchRunner` template rejection, where every cell would clobber
//! the same path.

use tr_flow::{
    parse_prob_mode, DelayBound, Error, NetlistFormat, OrderHeuristic, PropagationMode,
    ScenarioSpec,
};
use tr_reorder::Objective;
use tr_trace::summary::{parse, Json};

use crate::cache::content_key;

/// Fields that would make the server write files for a remote caller.
const ARTIFACT_FIELDS: &[&str] = &["out", "vcd", "trace", "write_netlist"];

/// The knobs shared by `/optimize`, `/analyze` and (per grid) `/batch`.
#[derive(Debug, Clone)]
pub struct Knobs {
    /// Probability backend (with partition/Monte knobs resolved).
    pub prob: PropagationMode,
    /// `{:?}`-canonical spelling of `prob` including its knob values —
    /// the cache-key part (two partition geometries must not alias).
    pub prob_label: String,
    /// Initial BDD variable-order heuristic.
    pub order: OrderHeuristic,
    /// Optimization objective.
    pub objective: Objective,
    /// Delay constraint mode.
    pub delay_bound: DelayBound,
    /// Iterate optimize ↔ re-propagate to a fixed point.
    pub fixpoint: bool,
    /// Requested optimizer threads (clamped by the server).
    pub threads: usize,
    /// Walk the degradation ladder instead of failing on a blown budget.
    pub degrade: bool,
    /// Requested wall-clock budget (clamped by the server).
    pub deadline_ms: Option<u64>,
    /// Requested BDD live-node budget (clamped by the server).
    pub node_budget: Option<usize>,
}

/// A parsed `POST /optimize` (or `/analyze`) body.
#[derive(Debug, Clone)]
pub struct OptimizeRequest {
    /// Report label for the circuit.
    pub name: String,
    /// The netlist text.
    pub netlist: String,
    /// How to parse it.
    pub format: NetlistFormat,
    /// Input-statistics scenario (+ seed).
    pub scenario: ScenarioSpec,
    /// Also optimize for the opposite objective (Table 3 headroom).
    pub headroom: bool,
    /// Shared knobs.
    pub knobs: Knobs,
}

impl OptimizeRequest {
    /// The content-addressed warm-cache key: a hash of everything that
    /// shapes the staged artifacts (parsed circuit → compiled circuit →
    /// BDDs with their settled variable order). That is the netlist
    /// bytes, their format, the library/process fingerprint, the
    /// scenario label (which encodes kind *and* seed — input statistics
    /// feed the propagator, and the info-measure order is
    /// statistics-dependent), the backend with its knobs, and the order
    /// heuristic. Objective, threads, budgets and headroom are
    /// deliberately excluded: they shape the optimization pass, not the
    /// cached artifacts.
    pub fn cache_key(&self, library_fingerprint: &str) -> u128 {
        content_key(&[
            self.netlist.as_bytes(),
            format_str(self.format).as_bytes(),
            library_fingerprint.as_bytes(),
            self.scenario.label.as_bytes(),
            self.knobs.prob_label.as_bytes(),
            self.knobs.order.as_str().as_bytes(),
        ])
    }
}

/// A parsed `POST /batch` body: a grid of circuits × scenarios.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// (name, netlist text, format) per circuit.
    pub circuits: Vec<(String, String, NetlistFormat)>,
    /// The scenario matrix.
    pub scenarios: Vec<ScenarioSpec>,
    /// Shared knobs (threads here size the worker pool; cells are
    /// single-threaded, as in `BatchRunner`).
    pub knobs: Knobs,
}

/// The canonical spelling of a format (also accepted on the wire).
pub fn format_str(format: NetlistFormat) -> &'static str {
    match format {
        NetlistFormat::Bench => "bench",
        NetlistFormat::Blif => "blif",
        NetlistFormat::Trnet => "trnet",
    }
}

fn parse_format(s: &str) -> Result<NetlistFormat, Error> {
    match s {
        "bench" => Ok(NetlistFormat::Bench),
        "blif" => Ok(NetlistFormat::Blif),
        "trnet" => Ok(NetlistFormat::Trnet),
        other => Err(Error::Usage(format!(
            "bad `format` `{other}` (expected bench, blif or trnet)"
        ))),
    }
}

fn usage(msg: impl Into<String>) -> Error {
    Error::Usage(msg.into())
}

fn want_str(v: &Json, field: &str) -> Result<String, Error> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| usage(format!("`{field}` must be a string")))
}

fn want_bool(v: &Json, field: &str) -> Result<bool, Error> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(usage(format!("`{field}` must be true or false"))),
    }
}

fn want_u64(v: &Json, field: &str) -> Result<u64, Error> {
    v.as_u64()
        .ok_or_else(|| usage(format!("`{field}` must be a non-negative integer")))
}

/// Checks one object's keys against a whitelist, with the artifact
/// fields singled out for the dedicated rejection message.
fn check_keys(members: &[(String, Json)], allowed: &[&str], context: &str) -> Result<(), Error> {
    for (key, _) in members {
        if ARTIFACT_FIELDS.contains(&key.as_str()) {
            return Err(usage(format!(
                "the server cannot write per-request artifacts: remove `{key}` \
                 (run the CLI locally for --out/--vcd/--trace output)"
            )));
        }
        if !allowed.contains(&key.as_str()) {
            return Err(usage(format!("unknown {context} field `{key}`")));
        }
    }
    Ok(())
}

const KNOB_FIELDS: &[&str] = &[
    "prob",
    "seed",
    "region_nodes",
    "cut_width",
    "order",
    "objective",
    "delay_bound",
    "fixpoint",
    "threads",
    "degrade",
    "deadline_ms",
    "node_budget",
];

fn parse_knobs(obj: &Json) -> Result<Knobs, Error> {
    let seed = match obj.get("seed") {
        Some(v) => want_u64(v, "seed")?,
        None => 1,
    };
    let mut prob = match obj.get("prob") {
        Some(v) => parse_prob_mode(&want_str(v, "prob")?, seed)?,
        None => PropagationMode::Independent,
    };
    let region_nodes = match obj.get("region_nodes") {
        Some(v) => Some(want_u64(v, "region_nodes")? as usize),
        None => None,
    };
    let cut_width = match obj.get("cut_width") {
        Some(v) => Some(want_u64(v, "cut_width")? as usize),
        None => None,
    };
    if region_nodes.is_some() || cut_width.is_some() {
        match &mut prob {
            PropagationMode::PartitionedBdd {
                max_region_nodes,
                max_cut_width,
            } => {
                if let Some(n) = region_nodes {
                    *max_region_nodes = n;
                }
                if let Some(w) = cut_width {
                    *max_cut_width = w;
                }
            }
            _ => {
                return Err(usage(
                    "`region_nodes`/`cut_width` require `\"prob\": \"part\"`",
                ))
            }
        }
    }
    let order = match obj.get("order") {
        Some(v) => OrderHeuristic::parse(&want_str(v, "order")?)?,
        None => OrderHeuristic::Structural,
    };
    let objective = match obj.get("objective").map(|v| want_str(v, "objective")) {
        Some(Ok(s)) if s == "min" => Objective::MinimizePower,
        Some(Ok(s)) if s == "max" => Objective::MaximizePower,
        Some(Ok(s)) => return Err(usage(format!("bad `objective` `{s}` (want min|max)"))),
        Some(Err(e)) => return Err(e),
        None => Objective::MinimizePower,
    };
    let delay_bound = match obj.get("delay_bound") {
        Some(v) => DelayBound::parse(&want_str(v, "delay_bound")?)?,
        None => DelayBound::Unbounded,
    };
    let fixpoint = match obj.get("fixpoint") {
        Some(v) => want_bool(v, "fixpoint")?,
        None => false,
    };
    let threads = match obj.get("threads") {
        Some(v) => {
            let t = want_u64(v, "threads")? as usize;
            if t == 0 {
                return Err(usage("`threads` must be at least 1"));
            }
            t
        }
        None => 1,
    };
    let degrade = match obj.get("degrade") {
        Some(v) => want_bool(v, "degrade")?,
        None => true,
    };
    let deadline_ms = match obj.get("deadline_ms") {
        Some(v) => Some(want_u64(v, "deadline_ms")?),
        None => None,
    };
    let node_budget = match obj.get("node_budget") {
        Some(v) => {
            let n = want_u64(v, "node_budget")? as usize;
            if n == 0 {
                return Err(usage("`node_budget` must be at least 1"));
            }
            Some(n)
        }
        None => None,
    };
    Ok(Knobs {
        prob_label: format!("{prob:?}"),
        prob,
        order,
        objective,
        delay_bound,
        fixpoint,
        threads,
        degrade,
        deadline_ms,
        node_budget,
    })
}

fn parse_body(body: &str) -> Result<Json, Error> {
    let json = parse(body).map_err(|e| usage(format!("bad JSON body: {e}")))?;
    match &json {
        Json::Obj(_) => Ok(json),
        _ => Err(usage("request body must be a JSON object")),
    }
}

/// Parses a `POST /optimize` / `POST /analyze` body.
pub fn parse_optimize(body: &str) -> Result<OptimizeRequest, Error> {
    let json = parse_body(body)?;
    let Json::Obj(members) = &json else {
        unreachable!()
    };
    let mut allowed = vec!["name", "netlist", "format", "scenario", "headroom"];
    allowed.extend_from_slice(KNOB_FIELDS);
    check_keys(members, &allowed, "request")?;

    let netlist = match json.get("netlist") {
        Some(v) => want_str(v, "netlist")?,
        None => return Err(usage("missing required field `netlist`")),
    };
    let name = match json.get("name") {
        Some(v) => want_str(v, "name")?,
        None => "request".to_string(),
    };
    let format = match json.get("format") {
        Some(v) => parse_format(&want_str(v, "format")?)?,
        None => NetlistFormat::Bench,
    };
    let scenario = match json.get("scenario") {
        Some(v) => ScenarioSpec::parse(&want_str(v, "scenario")?)?,
        None => ScenarioSpec::a(1),
    };
    let headroom = match json.get("headroom") {
        Some(v) => want_bool(v, "headroom")?,
        None => false,
    };
    Ok(OptimizeRequest {
        name,
        netlist,
        format,
        scenario,
        headroom,
        knobs: parse_knobs(&json)?,
    })
}

/// Parses a `POST /batch` body.
pub fn parse_batch(body: &str) -> Result<BatchRequest, Error> {
    let json = parse_body(body)?;
    let Json::Obj(members) = &json else {
        unreachable!()
    };
    let mut allowed = vec!["circuits", "scenarios"];
    allowed.extend_from_slice(KNOB_FIELDS);
    check_keys(members, &allowed, "request")?;

    let circuits_json = json
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or_else(|| usage("missing required array field `circuits`"))?;
    if circuits_json.is_empty() {
        return Err(usage("`circuits` must not be empty"));
    }
    let mut circuits = Vec::with_capacity(circuits_json.len());
    for (i, c) in circuits_json.iter().enumerate() {
        let Json::Obj(members) = c else {
            return Err(usage(format!("`circuits[{i}]` must be an object")));
        };
        check_keys(members, &["name", "netlist", "format"], "circuit")?;
        let netlist = match c.get("netlist") {
            Some(v) => want_str(v, "netlist")?,
            None => return Err(usage(format!("`circuits[{i}]` missing `netlist`"))),
        };
        let name = match c.get("name") {
            Some(v) => want_str(v, "name")?,
            None => format!("circuit-{i}"),
        };
        let format = match c.get("format") {
            Some(v) => parse_format(&want_str(v, "format")?)?,
            None => NetlistFormat::Bench,
        };
        circuits.push((name, netlist, format));
    }
    let scenarios = match json.get("scenarios") {
        Some(v) => ScenarioSpec::parse_matrix(&want_str(v, "scenarios")?)?,
        None => ScenarioSpec::default_matrix(),
    };
    Ok(BatchRequest {
        circuits,
        scenarios,
        knobs: parse_knobs(&json)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_optimize_request_defaults() {
        let req = parse_optimize(r#"{"netlist": "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"}"#).unwrap();
        assert_eq!(req.name, "request");
        assert_eq!(req.format, NetlistFormat::Bench);
        assert_eq!(req.scenario.label, "A#1");
        assert_eq!(req.knobs.prob, PropagationMode::Independent);
        assert_eq!(req.knobs.threads, 1);
        assert!(req.knobs.degrade);
    }

    #[test]
    fn artifact_fields_are_rejected_with_the_dedicated_message() {
        for field in ["out", "vcd", "trace"] {
            let body = format!(r#"{{"netlist": "x", "{field}": "/tmp/file"}}"#);
            let err = parse_optimize(&body).unwrap_err();
            assert!(matches!(err, Error::Usage(_)), "{field}: {err}");
            assert!(
                err.to_string().contains("per-request artifacts"),
                "{field}: {err}"
            );
        }
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = parse_optimize(r#"{"netlist": "x", "probb": "bdd"}"#).unwrap_err();
        assert!(err.to_string().contains("probb"), "{err}");
    }

    #[test]
    fn partition_knobs_require_part() {
        let err = parse_optimize(r#"{"netlist": "x", "prob": "bdd", "cut_width": 8}"#).unwrap_err();
        assert!(matches!(err, Error::Usage(_)));
        let ok = parse_optimize(r#"{"netlist": "x", "prob": "part", "cut_width": 8}"#).unwrap();
        assert!(matches!(
            ok.knobs.prob,
            PropagationMode::PartitionedBdd {
                max_cut_width: 8,
                ..
            }
        ));
    }

    #[test]
    fn batch_rejects_artifacts_in_nested_circuits() {
        let body = r#"{"circuits": [{"netlist": "x", "vcd": "w.vcd"}]}"#;
        let err = parse_batch(body).unwrap_err();
        assert!(err.to_string().contains("per-request artifacts"), "{err}");
    }

    #[test]
    fn cache_key_separates_every_artifact_shaping_axis() {
        let base = parse_optimize(r#"{"netlist": "N", "prob": "bdd"}"#).unwrap();
        let variants = [
            r#"{"netlist": "M", "prob": "bdd"}"#, // netlist bytes
            r#"{"netlist": "N", "prob": "bdd", "format": "trnet"}"#, // format
            r#"{"netlist": "N", "prob": "bdd", "scenario": "a:2"}"#, // scenario seed
            r#"{"netlist": "N", "prob": "bdd", "scenario": "b:2e7"}"#, // scenario kind
            r#"{"netlist": "N", "prob": "part"}"#, // backend
            r#"{"netlist": "N", "prob": "part", "cut_width": 3}"#, // backend knob
            r#"{"netlist": "N", "prob": "bdd", "order": "info"}"#, // order heuristic
        ];
        for body in variants {
            let other = parse_optimize(body).unwrap();
            assert_ne!(
                base.cache_key("lib"),
                other.cache_key("lib"),
                "aliased: {body}"
            );
        }
        // And the axes that must NOT shape the key: objective, threads,
        // budgets, headroom only change the optimization pass.
        let same = parse_optimize(
            r#"{"netlist": "N", "prob": "bdd", "objective": "max", "threads": 4,
                "deadline_ms": 50, "node_budget": 1000, "headroom": true}"#,
        )
        .unwrap();
        assert_eq!(base.cache_key("lib"), same.cache_key("lib"));
        assert_ne!(base.cache_key("lib"), base.cache_key("other-lib"));
    }
}
