//! Hand-rolled HTTP/1.1 — just enough for the daemon and nothing more.
//!
//! One exchange per connection: every response carries
//! `Connection: close`, so the server needs no keep-alive bookkeeping
//! and a streamed body (the `/batch` JSONL feed) is simply
//! close-delimited. Requests are capped ([`MAX_HEAD_BYTES`],
//! [`MAX_BODY_BYTES`]) so a confused client cannot balloon a worker.
//! The module also ships a tiny blocking client for the integration
//! tests and the `loadgen` harness — the workspace is offline, so there
//! is no external HTTP client to lean on.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Upper bound on a request body. Netlists are text; the large suite's
/// biggest `.trnet` is well under a megabyte, so 64 MiB is vast.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (as sent; not validated against a list).
    pub method: String,
    /// The request target, e.g. `/optimize`.
    pub path: String,
    /// Headers with names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this name (lookup name must be lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read off the wire.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure, including read timeouts. No response is owed.
    Io(io::Error),
    /// Syntactically invalid request — answer 400.
    Malformed(String),
    /// Head or body over its cap — answer 413.
    TooLarge(String),
}

/// Reads one request. `Ok(None)` means the peer closed before sending
/// anything (a health prober or the shutdown self-connect) — not an
/// error, just nothing to answer.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut line = String::new();
    let first = reader.read_line(&mut line).map_err(HttpError::Io)?;
    if first == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing path".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }

    let mut headers = Vec::new();
    let mut head_bytes = first;
    loop {
        let mut h = String::new();
        let n = reader.read_line(&mut h).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers".into()));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head over {MAX_HEAD_BYTES} bytes"
            )));
        }
        let t = h.trim_end();
        if t.is_empty() {
            break;
        }
        let (k, v) = t
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line `{t}`")))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::Malformed(
            "chunked request bodies are not supported; send Content-Length".into(),
        ));
    }
    let len = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|e| HttpError::Malformed(format!("bad Content-Length: {e}")))?,
        None => 0,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "request body over {MAX_BODY_BYTES} bytes"
        )));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response (status, `Content-Length`,
/// `Connection: close`, any extra headers, body) and flushes.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    )?;
    for (k, v) in extra {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the head of a close-delimited streaming response (no
/// `Content-Length`; the body ends when the connection does).
pub fn write_streaming_head(w: &mut impl Write, content_type: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n"
    )?;
    w.flush()
}

/// A client-side response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers with names lowercased.
    pub headers: Vec<(String, String)>,
    /// The full body (streamed bodies are read to connection close).
    pub body: Vec<u8>,
}

impl Response {
    /// First header with this name (lookup name must be lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as text.
    pub fn text(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// One blocking request/response exchange against `addr`.
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_response(reader: &mut impl BufRead) -> io::Result<Response> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| bad("empty status line".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("bad version `{version}`")));
    }
    let status: u16 = parts
        .next()
        .ok_or_else(|| bad("status line missing code".into()))?
        .parse()
        .map_err(|e| bad(format!("bad status code: {e}")))?;

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        let n = reader.read_line(&mut h)?;
        if n == 0 {
            return Err(bad("connection closed mid-headers".into()));
        }
        let t = h.trim_end();
        if t.is_empty() {
            break;
        }
        let (k, v) = t
            .split_once(':')
            .ok_or_else(|| bad(format!("bad header line `{t}`")))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }

    let body = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => {
            let len: usize = v
                .parse()
                .map_err(|e| bad(format!("bad Content-Length: {e}")))?;
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        // Close-delimited (the streaming /batch feed).
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /optimize HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/optimize");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn empty_connection_is_none() {
        assert!(read_request(&mut Cursor::new(&b""[..])).unwrap().is_none());
    }

    #[test]
    fn garbage_is_malformed() {
        let raw = b"NOT A REQUEST\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(&raw[..])),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_request(&mut Cursor::new(raw.as_bytes())),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn chunked_is_rejected() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(&raw[..])),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            200,
            "application/json",
            &[("X-Cache", "hit")],
            b"{}",
        )
        .unwrap();
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-cache"), Some("hit"));
        assert_eq!(resp.body, b"{}");
    }
}
