//! # tr-serve — the warm-cache optimization daemon
//!
//! A long-running server wrapping the `tr-flow` pipeline behind
//! hand-rolled HTTP/1.1 over `std::net` (the workspace is offline: no
//! hyper, no tokio — blocking sockets and a worker pool, in the
//! vendored-shim spirit). Endpoints:
//!
//! * `POST /optimize` — one netlist through the full flow; the JSON
//!   [`FlowReport`](tr_flow::FlowReport) back.
//! * `POST /analyze` — statistics + power + critical path, read-only.
//! * `POST /batch` — circuits × scenarios, streamed as JSONL, one
//!   report per line as cells complete.
//! * `GET /healthz` — liveness.
//! * `GET /metrics` — the `tr_trace::metrics` registry in Prometheus
//!   text exposition (cache hit/miss/evict, queue depth/wait,
//!   per-endpoint latency histograms).
//!
//! The performance core is the **content-addressed warm cache**
//! ([`WarmCache`]): a cold request's staged artifacts — parsed
//! [`Circuit`](tr_netlist::Circuit), compiled gates, built BDDs with
//! their settled variable order — are snapshotted
//! ([`tr_flow::StatsSnapshot`]) under a hash of everything that shaped
//! them (netlist bytes, format, library/process, scenario + seed,
//! backend + knobs, order heuristic). A repeat request rehydrates the
//! snapshot and skips parse/compile/build entirely; because cloning
//! the propagator replicates its whole engine state, the warm report
//! is bit-identical to a cold one apart from wall-clock timings.
//!
//! Admission is bounded (429 past the queue depth), per-request
//! deadlines and node budgets map onto [`tr_flow::RunBudget`] clamped
//! by server caps, and SIGTERM (or [`ServerHandle::shutdown`]) drains
//! queued and in-flight work before exit.

#![deny(unsafe_code)] // granted back, once, in `signal` (one FFI binding)
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod request;
mod server;
pub mod signal;

pub use cache::{content_key, CacheEntry, WarmCache};
pub use request::{parse_batch, parse_optimize, BatchRequest, Knobs, OptimizeRequest};
pub use server::{ServeConfig, Server, ServerHandle};
