//! The content-addressed warm cache.
//!
//! An entry retains the staged artifacts of one cold run — the parsed
//! [`Circuit`] and a [`StatsSnapshot`] (resolved input statistics plus
//! a pristine clone of the statistics propagator, BDD engine and all,
//! with its settled variable order). A warm hit hands
//! `Flow::rehydrate` those artifacts, so the repeat request skips
//! parse, technology-map, compile and BDD build entirely and still
//! produces a bit-identical report (minus wall-clock timings).
//!
//! Keys are 128-bit content hashes of everything that shapes the
//! artifacts (see `OptimizeRequest::cache_key`). Replacement is LRU
//! under two simultaneous budgets — live BDD nodes and approximate
//! heap bytes — because one `mult8`-class exact-backend entry costs
//! orders of magnitude more than a 10-gate one and a plain entry-count
//! bound would let memory grow unbounded.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tr_flow::StatsSnapshot;
use tr_netlist::Circuit;
use tr_trace::metrics;

/// 128-bit content hash over length-prefixed parts: two independent
/// 64-bit FNV-1a streams (distinct offset bases; the second stream eats
/// each byte rotated) so a collision needs both halves to collide at
/// once. Not cryptographic — the daemon trusts its clients — but the
/// length prefixes rule out the structural `("ab","c")` = `("a","bc")`
/// aliasing class outright.
pub fn content_key(parts: &[&[u8]]) -> u128 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
    const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
    let mut a = OFFSET_A;
    let mut b = OFFSET_B;
    let mut eat = |byte: u8| {
        a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
        b = (b ^ u64::from(byte.rotate_left(3))).wrapping_mul(PRIME);
    };
    for part in parts {
        for byte in (part.len() as u64).to_le_bytes() {
            eat(byte);
        }
        for &byte in *part {
            eat(byte);
        }
    }
    (u128::from(a) << 64) | u128::from(b)
}

/// One cached cold run: the parsed circuit plus its staged statistics.
#[derive(Debug)]
pub struct CacheEntry {
    /// The parsed, mapped, validated circuit.
    pub circuit: Circuit,
    /// The staged statistics artifacts (`Flow::rehydrate` input).
    pub snapshot: StatsSnapshot,
    /// Live BDD nodes this entry pins (node-budget accounting).
    pub nodes: usize,
    /// Approximate heap bytes this entry pins (byte-budget accounting).
    pub bytes: usize,
    /// Finished responses memoized per result key (the knobs that shape
    /// the *result* on top of the staged artifacts: objective, bounds,
    /// budgets, …). A repeat of the exact same request skips even the
    /// optimizer and replays the rendered JSON.
    results: Mutex<HashMap<u128, Arc<String>>>,
}

/// Memoized responses kept per entry. Results are small (a few KiB of
/// JSON) next to the staged artifacts, so a fixed count-cap is enough;
/// the whole map dies with its entry on eviction.
const MAX_RESULTS_PER_ENTRY: usize = 32;

impl CacheEntry {
    /// The memoized response for this result key, if any.
    pub fn result(&self, key: u128) -> Option<Arc<String>> {
        self.results.lock().unwrap().get(&key).cloned()
    }

    /// Memoizes a finished response. Callers must only pass
    /// non-degraded results: a degraded answer reflects one request's
    /// budget pressure, not the content, and must not be replayed.
    pub fn memoize(&self, key: u128, json: &str) {
        let mut results = self.results.lock().unwrap();
        if results.len() < MAX_RESULTS_PER_ENTRY {
            results
                .entry(key)
                .or_insert_with(|| Arc::new(json.to_string()));
        }
    }
}

struct Slot {
    entry: Arc<CacheEntry>,
    last_used: u64,
}

struct Inner {
    map: HashMap<u128, Slot>,
    nodes: usize,
    bytes: usize,
    tick: u64,
}

/// Thread-safe LRU over [`CacheEntry`]s, bounded by live-BDD-node and
/// byte budgets. Hit/miss/evict totals are mirrored into the
/// `tr_trace::metrics` registry (`serve.cache.{hit,miss,evict}`) for
/// the `/metrics` endpoint and kept as local atomics so tests don't
/// race the process-global registry.
pub struct WarmCache {
    inner: Mutex<Inner>,
    node_budget: usize,
    byte_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl WarmCache {
    /// A cache bounded by `node_budget` live BDD nodes and
    /// `byte_budget` approximate heap bytes across all entries.
    pub fn new(node_budget: usize, byte_budget: usize) -> Self {
        WarmCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                nodes: 0,
                bytes: 0,
                tick: 0,
            }),
            node_budget,
            byte_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An effectively unbounded cache (both budgets at `usize::MAX`).
    pub fn unbounded() -> Self {
        WarmCache::new(usize::MAX, usize::MAX)
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u128) -> Option<Arc<CacheEntry>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                metrics::counter("serve.cache.hit").inc();
                Some(Arc::clone(&slot.entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics::counter("serve.cache.miss").inc();
                None
            }
        }
    }

    /// Inserts (or replaces) the entry for `key`, then evicts
    /// least-recently-used *other* entries until both budgets hold
    /// again. The just-inserted entry is never its own victim: an
    /// entry larger than the whole budget is admitted alone rather
    /// than thrashing (the cache then holds exactly that entry).
    pub fn insert(&self, key: u128, circuit: Circuit, snapshot: StatsSnapshot) -> Arc<CacheEntry> {
        let nodes = snapshot.live_bdd_nodes();
        let bytes = snapshot.approx_heap_bytes();
        let entry = Arc::new(CacheEntry {
            circuit,
            snapshot,
            nodes,
            bytes,
            results: Mutex::new(HashMap::new()),
        });
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key,
            Slot {
                entry: Arc::clone(&entry),
                last_used: tick,
            },
        ) {
            inner.nodes -= old.entry.nodes;
            inner.bytes -= old.entry.bytes;
        }
        inner.nodes += nodes;
        inner.bytes += bytes;
        while (inner.nodes > self.node_budget || inner.bytes > self.byte_budget)
            && inner.map.len() > 1
        {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            let slot = inner.map.remove(&victim).expect("victim chosen from map");
            inner.nodes -= slot.entry.nodes;
            inner.bytes -= slot.entry.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            metrics::counter("serve.cache.evict").inc();
        }
        metrics::gauge("serve.cache.entries").set(inner.map.len() as f64);
        metrics::gauge("serve.cache.live_nodes").set(inner.nodes as f64);
        entry
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (hits, misses, evictions) of this cache instance.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Debug for WarmCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("WarmCache")
            .field("entries", &inner.map.len())
            .field("nodes", &inner.nodes)
            .field("bytes", &inner.bytes)
            .field("node_budget", &self.node_budget)
            .field("byte_budget", &self.byte_budget)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_boundary_sensitive() {
        // The length prefixes keep ("ab","c") and ("a","bc") apart.
        assert_ne!(
            content_key(&[b"ab", b"c"]),
            content_key(&[b"a", b"bc"]),
            "structural aliasing across part boundaries"
        );
        assert_ne!(content_key(&[b"a"]), content_key(&[b"a", b""]));
        assert_eq!(content_key(&[b"a", b"b"]), content_key(&[b"a", b"b"]));
    }

    #[test]
    fn one_byte_edit_changes_the_key() {
        let base = content_key(&[b"INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n", b"bench"]);
        let edit = content_key(&[b"INPUT(a)\nOUTPUT(c)\nb = NOT(a)\n", b"bench"]);
        assert_ne!(base, edit);
    }
}
