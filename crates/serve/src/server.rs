//! The daemon: accept loop, bounded admission queue, worker pool,
//! endpoint routing, warm cache, graceful drain.
//!
//! Life of a request: the accept loop pushes the raw connection onto a
//! bounded queue (or answers 429 when it is full — admission control
//! happens before any parsing, so overload costs the server almost
//! nothing); a worker pops it, parses the HTTP request and the JSON
//! body, clamps the requested budgets against the server caps, then
//! either *rehydrates* a warm-cache entry (skipping parse, map,
//! compile and BDD build) or runs the cold path and snapshots the
//! staged artifacts for next time. Shutdown — [`ServerHandle::shutdown`]
//! or SIGTERM — stops the accept loop and lets the workers finish
//! everything already queued or in flight before `run` returns.

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tr_flow::json::{json_f64, json_opt_f64, json_string};
use tr_flow::{parse_netlist, BatchJob, BatchRunner, Error, Flow, FlowEnv, RunBudget, StatsStage};
use tr_netlist::Circuit;
use tr_power::{circuit_power, Scratch};
use tr_timing::critical_path_delay;
use tr_trace::metrics;

use crate::cache::{content_key, WarmCache};
use crate::http::{self, HttpError, Request};
use crate::request::{parse_batch, parse_optimize, BatchRequest, Knobs, OptimizeRequest};
use crate::signal;

/// Server configuration. The caps (`max_*`) clamp what clients may
/// request; they never reject — a request asking for more than the cap
/// simply runs under the cap.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads (each serves one request at a time).
    pub threads: usize,
    /// Admission queue depth; connections beyond it are answered 429.
    pub queue_depth: usize,
    /// Cap on per-request `deadline_ms` (`None` = uncapped).
    pub max_deadline_ms: Option<u64>,
    /// Cap on per-request `node_budget` (`None` = uncapped).
    pub max_node_budget: Option<usize>,
    /// Cap on per-request optimizer `threads`.
    pub max_request_threads: usize,
    /// Warm-cache budget: live BDD nodes across all entries.
    pub cache_nodes: usize,
    /// Warm-cache budget: approximate heap bytes across all entries.
    pub cache_bytes: usize,
    /// Install a SIGTERM/SIGINT handler and drain when one arrives
    /// (the CLI turns this on; tests drive [`ServerHandle::shutdown`]).
    pub watch_signals: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: 4,
            queue_depth: 64,
            max_deadline_ms: None,
            max_node_budget: None,
            max_request_threads: 4,
            cache_nodes: 4_000_000,
            cache_bytes: 256 * 1024 * 1024,
            watch_signals: false,
        }
    }
}

struct Queue {
    conns: VecDeque<(TcpStream, Instant)>,
    /// `false` once the accept loop has stopped: workers exit when the
    /// queue runs dry instead of waiting for more.
    open: bool,
}

struct Shared {
    env: FlowEnv,
    config: ServeConfig,
    cache: WarmCache,
    /// Key part tying cached artifacts to this server's library/process.
    library_fingerprint: String,
    queue: Mutex<Queue>,
    ready: Condvar,
    draining: AtomicBool,
}

/// A bound, not-yet-running server. [`Server::run`] blocks until
/// shutdown; [`Server::spawn`] runs it on its own thread.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl Server {
    /// Binds the listener and builds the shared environment (library,
    /// process, power/timing models) the workers will run against.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let env = FlowEnv::new();
        let library_fingerprint = format!(
            "cells:{}/process:{:?}",
            env.library.cells().len(),
            env.process
        );
        let cache = WarmCache::new(config.cache_nodes, config.cache_bytes);
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                env,
                config,
                cache,
                library_fingerprint,
                queue: Mutex::new(Queue {
                    conns: VecDeque::new(),
                    open: true,
                }),
                ready: Condvar::new(),
                draining: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Runs accept loop + workers; returns after a graceful drain.
    pub fn run(self) -> io::Result<()> {
        tr_trace::set_thread_name("serve-accept");
        let workers: Vec<JoinHandle<()>> = (0..self.shared.config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker(&shared, i))
            })
            .collect();
        if self.shared.config.watch_signals {
            signal::install();
            let handle = self.handle();
            std::thread::spawn(move || loop {
                if handle.shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                if signal::pending() {
                    handle.shutdown();
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            });
        }

        for stream in self.listener.incoming() {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue, // transient accept failure
            };
            let _span = tr_trace::span!("serve.accept");
            let mut q = self.shared.queue.lock().unwrap();
            if q.conns.len() >= self.shared.config.queue_depth {
                drop(q);
                metrics::counter("serve.http.rejected").inc();
                let mut s = stream;
                let _ = reject(&mut s, 429, "admission queue full, retry later");
                continue;
            }
            q.conns.push_back((stream, Instant::now()));
            metrics::gauge("serve.queue.depth").set(q.conns.len() as f64);
            drop(q);
            self.shared.ready.notify_one();
        }

        // Drain: close the queue so workers exit once it runs dry, but
        // let them finish everything already accepted.
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.open = false;
        }
        self.shared.ready.notify_all();
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Runs the server on its own thread; the caller keeps the handle.
    pub fn spawn(self) -> (ServerHandle, JoinHandle<io::Result<()>>) {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.run());
        (handle, join)
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This instance's warm-cache (hits, misses, evictions) — local
    /// counters, so tests don't race the process-global `/metrics`
    /// registry.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.shared.cache.stats()
    }

    /// Resident warm-cache entries.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Starts a graceful drain: stop accepting, finish queued and
    /// in-flight requests, then let [`Server::run`] return. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.ready.notify_all();
    }
}

fn worker(shared: &Shared, idx: usize) {
    tr_trace::set_thread_name(&format!("serve-worker-{idx}"));
    let mut scratch = Scratch::new();
    loop {
        let (stream, accepted) = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(conn) = q.conns.pop_front() {
                    metrics::gauge("serve.queue.depth").set(q.conns.len() as f64);
                    break conn;
                }
                if !q.open {
                    return;
                }
                q = shared.ready.wait(q).unwrap();
            }
        };
        let wait_us = accepted.elapsed().as_micros() as u64;
        metrics::histogram("serve.queue.wait_us").record(wait_us);
        let _span = tr_trace::span!("serve.request", wait_us = wait_us);
        handle_connection(shared, stream, &mut scratch);
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream, scratch: &mut Scratch) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut out = stream;
    match http::read_request(&mut reader) {
        Ok(Some(req)) => dispatch(shared, &req, &mut out, scratch),
        Ok(None) => {} // probe or shutdown self-connect
        Err(HttpError::Malformed(m)) => {
            let _ = reject(&mut out, 400, &m);
        }
        Err(HttpError::TooLarge(m)) => {
            let _ = reject(&mut out, 413, &m);
        }
        Err(HttpError::Io(_)) => {} // peer vanished; nothing to answer
    }
}

fn dispatch(shared: &Shared, req: &Request, out: &mut TcpStream, scratch: &mut Scratch) {
    let t = Instant::now();
    metrics::counter("serve.requests.total").inc();
    let endpoint = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("POST", "/optimize") => "optimize",
        ("POST", "/analyze") => "analyze",
        ("POST", "/batch") => "batch",
        _ => "other",
    };
    let _span = tr_trace::span!("serve.handle", endpoint = endpoint);
    let result = match endpoint {
        "healthz" => http::write_response(out, 200, "text/plain", &[], b"ok\n"),
        "metrics" => http::write_response(
            out,
            200,
            "text/plain; version=0.0.4",
            &[],
            metrics::render_text().as_bytes(),
        ),
        "optimize" => handle_optimize(shared, req, out, scratch, false),
        "analyze" => handle_optimize(shared, req, out, scratch, true),
        "batch" => handle_batch(shared, req, out),
        _ => reject(
            out,
            404,
            &format!("no such endpoint: {} {}", req.method, req.path),
        ),
    };
    let _ = result; // the peer may already be gone; that's its problem
    metrics::histogram(&format!("serve.http.{endpoint}.latency_us"))
        .record(t.elapsed().as_micros() as u64);
}

/// The JSON error envelope every non-200 carries.
fn reject(out: &mut impl Write, status: u16, msg: &str) -> io::Result<()> {
    let kind = match status {
        400 | 404 | 405 | 413 => "usage",
        429 | 503 => "overload",
        _ => "internal",
    };
    let body = format!(
        "{{\"error\": {}, \"kind\": {}}}\n",
        json_string(msg),
        json_string(kind)
    );
    http::write_response(out, status, "application/json", &[], body.as_bytes())
}

/// Maps a pipeline error onto a status: caller mistakes are 400,
/// cancellations 503, everything else 500.
fn error_status(e: &Error) -> u16 {
    match e {
        Error::Usage(_)
        | Error::Unsupported(_)
        | Error::UnknownFormat(_)
        | Error::StatsMismatch { .. }
        | Error::Bench(_)
        | Error::Blif(_)
        | Error::Format(_)
        | Error::Circuit(_)
        | Error::Stats(_)
        | Error::Arity(_) => 400,
        Error::Interrupted(_) => 503,
        _ => 500,
    }
}

/// Budgets and threads a request may actually use: its ask clamped by
/// the server caps (a missing ask inherits the cap itself, so a capped
/// server never runs an unbounded request).
fn clamp(knobs: &Knobs, config: &ServeConfig) -> (RunBudget, usize) {
    let mut budget = RunBudget::default();
    let deadline = match (knobs.deadline_ms, config.max_deadline_ms) {
        (Some(req), Some(cap)) => Some(req.min(cap)),
        (Some(req), None) => Some(req),
        (None, cap) => cap,
    };
    if let Some(ms) = deadline {
        budget = budget.deadline_ms(ms);
    }
    let nodes = match (knobs.node_budget, config.max_node_budget) {
        (Some(req), Some(cap)) => Some(req.min(cap)),
        (Some(req), None) => Some(req),
        (None, cap) => cap,
    };
    if let Some(n) = nodes {
        budget = budget.bdd_nodes(n);
    }
    let threads = knobs.threads.min(config.max_request_threads).max(1);
    (budget, threads)
}

/// The `Flow` template for one request's knobs (no source: the staged
/// entry points take the circuit explicitly).
fn request_flow(preq: &OptimizeRequest, budget: RunBudget, threads: usize) -> Flow {
    Flow::from_circuit(Circuit::new("template"))
        .scenario(preq.scenario.scenario, preq.scenario.seed)
        .prob(preq.knobs.prob)
        .order(preq.knobs.order)
        .objective(preq.knobs.objective)
        .delay_bound(preq.knobs.delay_bound)
        .fixpoint(preq.knobs.fixpoint)
        .threads(threads)
        .headroom(preq.headroom)
        .budget(budget)
        .degrade(preq.knobs.degrade)
}

fn handle_optimize(
    shared: &Shared,
    req: &Request,
    out: &mut TcpStream,
    scratch: &mut Scratch,
    analyze_only: bool,
) -> io::Result<()> {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return reject(out, 400, "request body must be UTF-8 JSON");
    };
    let preq = match parse_optimize(body) {
        Ok(p) => p,
        Err(e) => return reject(out, error_status(&e), &e.to_string()),
    };
    // Panic fence: one poisoned request answers 500, the worker lives
    // on (with a rebuilt scratch arena — the unwound stage may have
    // left it mid-update).
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_optimize(shared, &preq, scratch, analyze_only)
    }));
    match outcome {
        Ok(Ok((json, cache_state))) => http::write_response(
            out,
            200,
            "application/json",
            &[("X-Cache", cache_state)],
            json.as_bytes(),
        ),
        Ok(Err(e)) => reject(out, error_status(&e), &e.to_string()),
        Err(payload) => {
            *scratch = Scratch::new();
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "request panicked".to_string());
            reject(out, 500, &format!("request panicked: {msg}"))
        }
    }
}

/// The warm/cold core shared by `/optimize` and `/analyze`. Returns the
/// response JSON plus the `X-Cache` verdict.
fn run_optimize(
    shared: &Shared,
    preq: &OptimizeRequest,
    scratch: &mut Scratch,
    analyze_only: bool,
) -> Result<(String, &'static str), Error> {
    let env = &shared.env;
    let (budget, threads) = clamp(&preq.knobs, &shared.config);
    let flow = request_flow(preq, budget, threads);
    let key = preq.cache_key(&shared.library_fingerprint);
    let rkey = result_key(preq, &shared.config, threads, analyze_only);

    if let Some(entry) = shared.cache.get(key) {
        // Warmest: the exact same request ran before and its response
        // is memoized on the entry — replay it without even touching
        // the optimizer. (Timings are the original run's; the response
        // is otherwise deterministic, so byte-replay is exact.)
        if let Some(json) = entry.result(rkey) {
            return Ok((json.as_ref().clone(), "hit"));
        }
        // Warm: rehydrate clones the snapshot's propagator and attaches
        // this request's governor — no parse, no map, no BDD build.
        let stage = flow.rehydrate(env, &entry.circuit, &entry.snapshot)?;
        let (json, degraded) = finish(
            &flow,
            env,
            &entry.circuit,
            preq,
            0.0,
            stage,
            scratch,
            analyze_only,
        )?;
        if !degraded {
            entry.memoize(rkey, &json);
        }
        return Ok((json, "hit"));
    }

    // Cold: full load + stage 2, then snapshot the staged artifacts
    // before optimization mutates the propagator's counters.
    let t = Instant::now();
    let circuit = {
        let _s = tr_trace::span!("serve.load", name = preq.name.as_str());
        let circuit = parse_netlist(
            &preq.name,
            &preq.netlist,
            preq.format,
            &env.library,
            &Default::default(),
        )?;
        circuit.validate(&env.library)?;
        circuit
    };
    let load_s = t.elapsed().as_secs_f64();
    let stage = flow.prepare_stats(env, &circuit)?;
    let entry = stage
        .snapshot()
        .map(|snapshot| shared.cache.insert(key, circuit.clone(), snapshot));
    let (json, degraded) = finish(
        &flow,
        env,
        &circuit,
        preq,
        load_s,
        stage,
        scratch,
        analyze_only,
    )?;
    if let (Some(entry), false) = (entry, degraded) {
        entry.memoize(rkey, &json);
    }
    Ok((json, "miss"))
}

/// The key for per-entry response memoization: everything that shapes
/// the *result* given the staged artifacts. The circuit name is
/// included (the report carries it), as are the clamped budgets — the
/// same ask under a reconfigured server is a different result.
fn result_key(
    preq: &OptimizeRequest,
    config: &ServeConfig,
    threads: usize,
    analyze_only: bool,
) -> u128 {
    let deadline = preq.knobs.deadline_ms.map_or_else(
        || format!("{:?}", config.max_deadline_ms),
        |v| v.to_string(),
    );
    let nodes = preq.knobs.node_budget.map_or_else(
        || format!("{:?}", config.max_node_budget),
        |v| v.to_string(),
    );
    content_key(&[
        if analyze_only { "analyze" } else { "optimize" }.as_bytes(),
        preq.name.as_bytes(),
        format!("{:?}", preq.knobs.objective).as_bytes(),
        format!("{:?}", preq.knobs.delay_bound).as_bytes(),
        format!("{:?}", preq.knobs.fixpoint).as_bytes(),
        threads.to_string().as_bytes(),
        preq.headroom.to_string().as_bytes(),
        preq.knobs.degrade.to_string().as_bytes(),
        deadline.as_bytes(),
        nodes.as_bytes(),
    ])
}

/// Stages 3–7 (optimize) or the read-only summary (analyze). Returns
/// the response JSON plus whether the run degraded (degraded responses
/// must not be memoized).
#[allow(clippy::too_many_arguments)]
fn finish(
    flow: &Flow,
    env: &FlowEnv,
    circuit: &Circuit,
    preq: &OptimizeRequest,
    load_s: f64,
    stage: StatsStage,
    scratch: &mut Scratch,
    analyze_only: bool,
) -> Result<(String, bool), Error> {
    if analyze_only {
        let power = circuit_power(circuit, &env.model, stage.net_stats());
        let delay = critical_path_delay(circuit, &env.timing);
        let degraded = stage.degraded();
        return Ok((
            format!(
                "{{\"circuit\": {}, \"scenario\": {}, \"gates\": {}, \"inputs\": {}, \
             \"depth\": {}, \"prob_mode\": {}, \"power_w\": {}, \"critical_path_s\": {}, \
             \"independence_error\": {}, \"degraded\": {}}}",
                json_string(&preq.name),
                json_string(&preq.scenario.label),
                circuit.gates().len(),
                circuit.primary_inputs().len(),
                circuit.logic_depth(),
                json_string(stage.prob_mode().as_str()),
                json_f64(power.total),
                json_f64(delay),
                json_opt_f64(stage.independence_error()),
                degraded
            ),
            degraded,
        ));
    }
    let (report, _) = flow.run_staged(env, circuit, preq.name.clone(), load_s, stage, scratch)?;
    Ok((report.to_json(), report.degraded))
}

fn handle_batch(shared: &Shared, req: &Request, out: &mut TcpStream) -> io::Result<()> {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return reject(out, 400, "request body must be UTF-8 JSON");
    };
    let preq = match parse_batch(body) {
        Ok(p) => p,
        Err(e) => return reject(out, error_status(&e), &e.to_string()),
    };
    let BatchRequest {
        circuits,
        scenarios,
        knobs,
    } = preq;
    // Parse every netlist before the first response byte: a bad input
    // still gets a clean 400 instead of a truncated stream.
    let mut jobs = Vec::with_capacity(circuits.len());
    for (name, netlist, format) in &circuits {
        let circuit = match parse_netlist(
            name,
            netlist,
            *format,
            &shared.env.library,
            &Default::default(),
        )
        .and_then(|c| {
            c.validate(&shared.env.library)?;
            Ok(c)
        }) {
            Ok(c) => c,
            Err(e) => return reject(out, error_status(&e), &format!("circuit `{name}`: {e}")),
        };
        jobs.push(BatchJob::from_circuit(name.clone(), circuit));
    }
    let (budget, pool_threads) = clamp(&knobs, &shared.config);
    let dummy = OptimizeRequest {
        name: "template".to_string(),
        netlist: String::new(),
        format: tr_flow::NetlistFormat::Trnet,
        scenario: tr_flow::ScenarioSpec::a(1),
        headroom: false,
        knobs,
    };
    // Cells are single-threaded; the request's `threads` sizes the pool
    // (still capped by the server), exactly as `tr-opt batch` does.
    let runner = BatchRunner::new(request_flow(&dummy, budget, 1)).threads(pool_threads);

    // From here the response streams: one JSONL report per finished
    // (circuit, scenario) cell, close-delimited.
    http::write_streaming_head(out, "application/x-ndjson")?;
    let mut sink_err: Option<io::Error> = None;
    runner.run(&shared.env, &jobs, &scenarios, |res| {
        if sink_err.is_some() {
            return; // peer is gone; let the grid finish quietly
        }
        let line = match &res.outcome {
            Ok(report) => report.to_json(),
            Err(e) => format!(
                "{{\"job\": {}, \"scenario\": {}, \"error\": {}, \"kind\": \"cell\"}}",
                json_string(&res.job),
                json_string(&res.scenario),
                json_string(&e.to_string())
            ),
        };
        if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
            sink_err = Some(e);
        }
    });
    match sink_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
