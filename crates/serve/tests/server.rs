//! Integration tests against a live in-process server: cache-key
//! aliasing, warm/cold equivalence under a concurrent client storm
//! (including forced eviction), artifact rejection over HTTP, JSONL
//! batch streaming, admission control and graceful drain.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

use proptest::prelude::*;
use tr_flow::json::json_string;
use tr_flow::ScenarioSpec;
use tr_flow::{parse_netlist, parse_prob_mode, Flow, FlowEnv, NetlistFormat, OrderHeuristic};
use tr_serve::http;

const TOY: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = AND(a, b)\ny = NOT(n1)\n";

fn cfg() -> tr_serve::ServeConfig {
    tr_serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        watch_signals: false,
        ..Default::default()
    }
}

fn spawn(
    config: tr_serve::ServeConfig,
) -> (
    tr_serve::ServerHandle,
    JoinHandle<std::io::Result<()>>,
    SocketAddr,
) {
    let server = tr_serve::Server::bind(config).expect("bind");
    let addr = server.addr();
    let (handle, join) = server.spawn();
    (handle, join, addr)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> http::Response {
    http::request(&addr.to_string(), "POST", path, body.as_bytes()).expect("request")
}

fn get(addr: SocketAddr, path: &str) -> http::Response {
    http::request(&addr.to_string(), "GET", path, b"").expect("request")
}

/// An /optimize body for `netlist` with extra fields spliced in.
fn optimize_body(name: &str, netlist: &str, extra: &str) -> String {
    format!(
        "{{\"name\": {}, \"netlist\": {}{}{}}}",
        json_string(name),
        json_string(netlist),
        if extra.is_empty() { "" } else { ", " },
        extra
    )
}

/// Drops the wall-clock `timings` block (always the report's last key):
/// it is the one part of a warm report that legitimately differs.
fn strip_timings(json: &str) -> String {
    let i = json
        .rfind(",\"timings\":")
        .expect("report has a timings block");
    format!("{}}}", &json[..i])
}

/// What a fresh, single-threaded, cache-less run of the same request
/// must produce (minus timings).
fn fresh_report(
    env: &FlowEnv,
    name: &str,
    netlist: &str,
    scenario: &str,
    prob: &str,
    order: OrderHeuristic,
) -> String {
    let spec = ScenarioSpec::parse(scenario).unwrap();
    let circuit = parse_netlist(
        name,
        netlist,
        NetlistFormat::Bench,
        &env.library,
        &Default::default(),
    )
    .unwrap();
    let flow = Flow::from_circuit(circuit)
        .scenario(spec.scenario, spec.seed)
        .prob(parse_prob_mode(prob, 1).unwrap())
        .order(order)
        .headroom(false) // the server's default: headroom is opt-in per request
        .threads(1);
    strip_timings(&flow.run(env).unwrap().to_json())
}

#[test]
fn healthz_and_metrics_respond() {
    let (handle, join, addr) = spawn(cfg());
    assert_eq!(get(addr, "/healthz").status, 200);
    let _ = post(
        addr,
        "/optimize",
        &optimize_body("toy", TOY, "\"prob\": \"bdd\""),
    );
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text().into_owned();
    for name in [
        "serve_cache_miss",
        "serve_requests_total",
        "serve_queue_wait_us",
        "serve_http_optimize_latency_us",
    ] {
        assert!(text.contains(name), "missing metric `{name}` in:\n{text}");
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Satellite: requests differing only in scenario seed, scenario kind,
/// backend, backend knobs, or order heuristic must not alias in the
/// cache; a one-byte netlist edit must miss.
#[test]
fn cache_keys_do_not_alias() {
    let (handle, join, addr) = spawn(cfg());
    let base = optimize_body("toy", TOY, "\"prob\": \"bdd\", \"scenario\": \"a:1\"");
    assert_eq!(
        post(addr, "/optimize", &base).header("x-cache"),
        Some("miss")
    );
    assert_eq!(
        post(addr, "/optimize", &base).header("x-cache"),
        Some("hit")
    );

    let edited = TOY.replace("AND(a, b)", "AND(b, a)");
    let variants = [
        optimize_body("toy", TOY, "\"prob\": \"bdd\", \"scenario\": \"a:2\""),
        optimize_body("toy", TOY, "\"prob\": \"bdd\", \"scenario\": \"b:2e7\""),
        optimize_body("toy", TOY, "\"prob\": \"part\", \"scenario\": \"a:1\""),
        optimize_body(
            "toy",
            TOY,
            "\"prob\": \"part\", \"cut_width\": 3, \"scenario\": \"a:1\"",
        ),
        optimize_body(
            "toy",
            TOY,
            "\"prob\": \"bdd\", \"order\": \"info\", \"scenario\": \"a:1\"",
        ),
        optimize_body("toy", &edited, "\"prob\": \"bdd\", \"scenario\": \"a:1\""),
    ];
    for (i, body) in variants.iter().enumerate() {
        let first = post(addr, "/optimize", body);
        assert_eq!(first.status, 200, "variant {i}: {}", first.text());
        assert_eq!(
            first.header("x-cache"),
            Some("miss"),
            "variant {i} aliased an earlier cache entry"
        );
        assert_eq!(
            post(addr, "/optimize", body).header("x-cache"),
            Some("hit"),
            "variant {i} failed to hit its own entry"
        );
    }
    let (hits, misses, _) = handle.cache_stats();
    assert_eq!(misses, 1 + variants.len() as u64);
    assert_eq!(hits, 1 + variants.len() as u64);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Satellite: the server must reject per-request file outputs with a
/// typed usage error → HTTP 400, mirroring the batch template
/// rejection.
#[test]
fn artifact_fields_are_http_400() {
    let (handle, join, addr) = spawn(cfg());
    for extra in [
        "\"out\": \"/tmp/x.trnet\"",
        "\"vcd\": \"/tmp/x.vcd\"",
        "\"trace\": \"/tmp/x.json\"",
    ] {
        let resp = post(addr, "/optimize", &optimize_body("toy", TOY, extra));
        assert_eq!(resp.status, 400, "{extra}: {}", resp.text());
        let text = resp.text().into_owned();
        assert!(text.contains("per-request artifacts"), "{extra}: {text}");
        assert!(text.contains("\"kind\": \"usage\""), "{extra}: {text}");
    }
    // Nested in a batch circuit entry, and at the batch top level.
    for body in [
        format!(
            "{{\"circuits\": [{{\"netlist\": {}, \"out\": \"x\"}}]}}",
            json_string(TOY)
        ),
        format!(
            "{{\"circuits\": [{{\"netlist\": {}}}], \"trace\": \"x\"}}",
            json_string(TOY)
        ),
    ] {
        let resp = post(addr, "/batch", &body);
        assert_eq!(resp.status, 400, "{}", resp.text());
        assert!(resp.text().contains("per-request artifacts"));
    }
    // Unknown endpoint and bad JSON are also typed, not hangs.
    assert_eq!(post(addr, "/frobnicate", "{}").status, 404);
    assert_eq!(post(addr, "/optimize", "not json").status, 400);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn batch_streams_one_jsonl_line_per_cell() {
    let (handle, join, addr) = spawn(cfg());
    let body = format!(
        "{{\"circuits\": [{{\"name\": \"t1\", \"netlist\": {}}}, {{\"name\": \"t2\", \"netlist\": {}}}], \
          \"scenarios\": \"a:1,a:2\", \"prob\": \"bdd\", \"threads\": 2}}",
        json_string(TOY),
        json_string("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"),
    );
    let resp = post(addr, "/batch", &body);
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("application/x-ndjson"),
        "batch must stream JSONL"
    );
    let text = resp.text().into_owned();
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 4, "2 circuits × 2 scenarios:\n{text}");
    for line in &lines {
        let parsed = tr_trace::summary::parse(line).expect("each line is standalone JSON");
        assert!(
            parsed.get("circuit").is_some(),
            "not a FlowReport line: {line}"
        );
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Hammers one body from N threads × M rounds and checks every
/// response is 200 with the expected stripped report, counting
/// hits/misses via the X-Cache header.
fn storm(
    addr: SocketAddr,
    clients: usize,
    rounds: usize,
    body: &str,
    expected: &str,
) -> (usize, usize) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let (mut hits, mut misses) = (0usize, 0usize);
                    for _ in 0..rounds {
                        let resp = post(addr, "/optimize", body);
                        assert_eq!(resp.status, 200, "{}", resp.text());
                        match resp.header("x-cache") {
                            Some("hit") => hits += 1,
                            Some("miss") => misses += 1,
                            other => panic!("bad X-Cache: {other:?}"),
                        }
                        let text = resp.text().into_owned();
                        assert_eq!(
                            strip_timings(&text),
                            expected,
                            "a served report diverged from the fresh single-threaded run"
                        );
                    }
                    (hits, misses)
                })
            })
            .collect();
        handles.into_iter().fold((0, 0), |(h, m), j| {
            let (jh, jm) = j.join().unwrap();
            (h + jh, m + jm)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Satellite: N concurrent clients hammering the same circuit get
    /// bitwise-identical reports, equal to a fresh single-threaded
    /// run, whatever mix of warm and cold paths served them.
    #[test]
    fn concurrent_storm_equals_single_threaded_run(seed in 1u64..50, info_order in any::<bool>()) {
        let order = if info_order { OrderHeuristic::InfoMeasure } else { OrderHeuristic::Structural };
        let scenario = format!("a:{seed}");
        let env = FlowEnv::new();
        let expected = fresh_report(&env, "toy", TOY, &scenario, "bdd", order);
        let body = optimize_body(
            "toy",
            TOY,
            &format!(
                "\"prob\": \"bdd\", \"scenario\": \"{scenario}\", \"order\": \"{}\"",
                if info_order { "info" } else { "struct" }
            ),
        );
        let (handle, join, addr) = spawn(tr_serve::ServeConfig { threads: 4, ..cfg() });
        let (hits, misses) = storm(addr, 8, 3, &body, &expected);
        prop_assert_eq!(hits + misses, 24);
        prop_assert!(misses >= 1, "first request must build the entry");
        prop_assert!(hits >= 1, "storm never hit the warm cache");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}

/// Satellite (second half): equivalence must survive forced eviction
/// mid-storm. A 1-node cache budget means every exact-backend insert
/// evicts the other entry, so two alternating circuits keep churning
/// the cache while 8 clients hammer both.
#[test]
fn storm_under_forced_eviction_stays_equivalent() {
    let toy2 = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = OR(a, b)\ny = NOT(n1)\n";
    let env = FlowEnv::new();
    let expected_a = fresh_report(&env, "t1", TOY, "a:3", "bdd", OrderHeuristic::Structural);
    let expected_b = fresh_report(&env, "t2", toy2, "a:3", "bdd", OrderHeuristic::Structural);
    let body_a = optimize_body("t1", TOY, "\"prob\": \"bdd\", \"scenario\": \"a:3\"");
    let body_b = optimize_body("t2", toy2, "\"prob\": \"bdd\", \"scenario\": \"a:3\"");
    let (handle, join, addr) = spawn(tr_serve::ServeConfig {
        threads: 4,
        cache_nodes: 1, // every insert blows the budget → constant eviction
        ..cfg()
    });
    std::thread::scope(|scope| {
        for i in 0..8 {
            let (body, expected) = if i % 2 == 0 {
                (&body_a, &expected_a)
            } else {
                (&body_b, &expected_b)
            };
            scope.spawn(move || {
                for _ in 0..3 {
                    let resp = post(addr, "/optimize", body);
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    let text = resp.text().into_owned();
                    assert_eq!(&strip_timings(&text), expected);
                }
            });
        }
    });
    let (_, _, evictions) = handle.cache_stats();
    assert!(
        evictions > 0,
        "the 1-node budget was supposed to force evictions"
    );
    assert!(handle.cache_len() <= 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Admission control: with one worker wedged and one connection
/// queued, the next connection is answered 429 without parsing.
#[test]
fn overload_is_429() {
    let (handle, join, addr) = spawn(tr_serve::ServeConfig {
        threads: 1,
        queue_depth: 1,
        ..cfg()
    });
    // Wedge the single worker: open a connection and send only half a
    // request; the worker blocks reading the rest.
    let mut wedge = TcpStream::connect(addr).unwrap();
    wedge
        .write_all(b"POST /optimize HTTP/1.1\r\nContent-Length: 10\r\n\r\n")
        .unwrap();
    wedge.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    // Fill the queue with a second half-open connection...
    let mut parked = TcpStream::connect(addr).unwrap();
    parked.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    // ...so the third is rejected at admission.
    let resp = get(addr, "/healthz");
    assert_eq!(resp.status, 429, "{}", resp.text());
    assert!(resp.text().contains("queue full"), "{}", resp.text());
    // Unwedge so drain can finish.
    wedge.write_all(b"0123456789").unwrap();
    parked.write_all(b"\r\n").unwrap();
    drop(wedge);
    drop(parked);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Graceful drain: shutdown stops new admissions but the report for
/// anything already accepted still arrives.
#[test]
fn shutdown_drains_and_refuses_new_work() {
    let (handle, join, addr) = spawn(cfg());
    assert_eq!(
        post(addr, "/optimize", &optimize_body("toy", TOY, "")).status,
        200
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
    // The listener is gone: connecting now fails outright.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener still accepting"
    );
}
