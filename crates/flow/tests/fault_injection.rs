//! The fault-injection suite: drives every rung of the degradation
//! ladder and the batch runner's per-cell panic fence through named,
//! deterministic faultpoints (`tr_flow::faultpoint`). Compiled only
//! with the `fault-injection` feature:
//!
//! ```text
//! cargo test -p tr-flow --features fault-injection
//! ```
//!
//! The faultpoint registry is process-global, so every test here
//! serializes on one lock and disarms all sites on entry and exit.

#![cfg(feature = "fault-injection")]

use std::sync::{Mutex, MutexGuard, PoisonError};
use tr_flow::faultpoint::{arm, arm_nth, disarm_all, Fault};
use tr_flow::{
    BatchJob, BatchRunner, Error, Flow, FlowEnv, PropagationMode, RunBudget, ScenarioSpec,
};
use tr_netlist::generators;
use tr_power::scenario::Scenario;

/// One lock for the whole suite (the registry is process-global). A
/// panicking test must not wedge the rest, so poisoning is ignored.
fn suite_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    disarm_all();
    guard
}

#[test]
fn injected_node_limit_recovers_on_the_info_reorder_rung() {
    let _guard = suite_lock();
    let env = FlowEnv::new();
    arm("exact-build", Fault::NodeLimit);
    let report = Flow::from_circuit(generators::ripple_carry_adder(8, &env.library))
        .scenario(Scenario::a(), 11)
        .prob(PropagationMode::ExactBdd)
        .run(&env)
        .expect("rung 1 absorbs a single node-limit failure");
    assert!(report.degraded);
    assert_eq!(report.degrade_rung.as_deref(), Some("info-reorder-retry"));
    // The full history carries the single rung with its phase and a
    // sensible timestamp.
    assert_eq!(report.degrade_events.len(), 1);
    assert_eq!(report.degrade_events[0].rung, "info-reorder-retry");
    assert_eq!(report.degrade_events[0].phase, "stats");
    assert!(report.degrade_events[0].elapsed_ms >= 0.0);
    // The retry succeeded, so the run stays on the exact backend and
    // still measures the independence error.
    assert_eq!(report.prob_mode, "bdd");
    assert!(report.independence_error.is_some());
    let reason = report.degrade_reason.expect("first failure recorded");
    assert!(reason.contains("node limit"), "reason: {reason}");
    assert!(report.power.model_after_w > 0.0);
    disarm_all();
}

#[test]
fn injected_node_limit_on_both_rungs_falls_back_to_independent() {
    let _guard = suite_lock();
    let env = FlowEnv::new();
    arm("exact-build", Fault::NodeLimit);
    arm("info-reorder-retry", Fault::NodeLimit);
    let report = Flow::from_circuit(generators::ripple_carry_adder(8, &env.library))
        .scenario(Scenario::a(), 11)
        .prob(PropagationMode::ExactBdd)
        .run(&env)
        .expect("rung 2 always lands");
    assert!(report.degraded);
    assert_eq!(report.degrade_rung.as_deref(), Some("independent-fallback"));
    // A failed retry records no event: the history has the one rung
    // that actually landed, and it matches `degrade_rung`.
    assert_eq!(report.degrade_events.len(), 1);
    assert_eq!(report.degrade_events[0].rung, "independent-fallback");
    assert_eq!(report.degrade_events[0].phase, "stats");
    assert_eq!(report.prob_mode, "indep");
    assert_eq!(report.independence_error, None);
    assert!(report.power.model_after_w > 0.0);
    disarm_all();
}

#[test]
fn injected_node_limit_recovers_on_the_shrink_regions_rung() {
    let _guard = suite_lock();
    let env = FlowEnv::new();
    arm("part-build", Fault::NodeLimit);
    let report = Flow::from_circuit(generators::array_multiplier(6, &env.library))
        .scenario(Scenario::a(), 11)
        .prob(PropagationMode::partitioned())
        .run(&env)
        .expect("shrink-regions absorbs a single node-limit failure");
    assert!(report.degraded);
    assert_eq!(report.degrade_rung.as_deref(), Some("shrink-regions"));
    assert_eq!(report.degrade_events.len(), 1);
    assert_eq!(report.degrade_events[0].rung, "shrink-regions");
    assert_eq!(report.degrade_events[0].phase, "stats");
    // The retry succeeded with halved regions: still the partitioned
    // backend, with its shape in the report.
    assert_eq!(report.prob_mode, "part");
    assert!(report.partition_regions.is_some());
    assert!(report.partition_error_bound.is_some());
    let reason = report.degrade_reason.expect("first failure recorded");
    assert!(reason.contains("node limit"), "reason: {reason}");
    assert!(report.power.model_after_w > 0.0);
    disarm_all();
}

#[test]
fn injected_node_limit_on_both_partition_rungs_falls_back_to_independent() {
    let _guard = suite_lock();
    let env = FlowEnv::new();
    arm("part-build", Fault::NodeLimit);
    // The shrink-regions site fails the whole rung (every halving).
    arm("shrink-regions", Fault::NodeLimit);
    let report = Flow::from_circuit(generators::array_multiplier(6, &env.library))
        .scenario(Scenario::a(), 11)
        .prob(PropagationMode::partitioned())
        .run(&env)
        .expect("rung 2 always lands");
    assert!(report.degraded);
    assert_eq!(report.degrade_rung.as_deref(), Some("independent-fallback"));
    assert_eq!(report.prob_mode, "indep");
    assert_eq!(report.partition_regions, None);
    assert_eq!(report.partition_error_bound, None);
    assert!(report.power.model_after_w > 0.0);
    disarm_all();
}

#[test]
fn injected_node_limit_with_degrade_off_is_a_typed_error() {
    let _guard = suite_lock();
    let env = FlowEnv::new();
    arm("exact-build", Fault::NodeLimit);
    let err = Flow::from_circuit(generators::ripple_carry_adder(8, &env.library))
        .scenario(Scenario::a(), 11)
        .prob(PropagationMode::ExactBdd)
        .budget(RunBudget::default().bdd_nodes(4096))
        .degrade(false)
        .run(&env)
        .unwrap_err();
    assert!(
        err.to_string().contains("node limit"),
        "expected the injected NodeLimit verbatim, got: {err}"
    );
    disarm_all();
}

/// An injected delay at the optimize faultpoint blows the run's
/// deadline; the next stage-boundary checkpoint trips, and the
/// remaining stages finish ungoverned.
#[test]
fn injected_delay_blows_the_deadline_and_finishes_ungoverned() {
    let _guard = suite_lock();
    let env = FlowEnv::new();
    arm("optimize", Fault::DelayMs(800));
    let report = Flow::from_circuit(generators::ripple_carry_adder(8, &env.library))
        .scenario(Scenario::a(), 11)
        .prob(PropagationMode::ExactBdd)
        .budget(RunBudget::default().deadline_ms(600))
        .run(&env)
        .expect("a blown deadline degrades, never aborts");
    assert!(report.degraded);
    assert_eq!(report.degrade_rung.as_deref(), Some("finish-ungoverned"));
    // The deepest rung in the report is always the last event, and the
    // event timeline is monotone.
    let events = &report.degrade_events;
    assert!(!events.is_empty());
    assert_eq!(events.last().unwrap().rung, "finish-ungoverned");
    assert_eq!(events.last().unwrap().phase, "boundary");
    assert!(events
        .windows(2)
        .all(|w| w[0].elapsed_ms <= w[1].elapsed_ms));
    // The exact statistics were computed before the trip: the backend
    // does not downgrade.
    assert_eq!(report.prob_mode, "bdd");
    let reason = report.degrade_reason.expect("trip recorded");
    assert!(reason.contains("deadline"), "reason: {reason}");
    disarm_all();
}

/// An injected panic in one batch cell fails exactly that cell; every
/// other cell of the grid completes normally.
#[test]
fn injected_worker_panic_fails_only_its_own_cell() {
    let _guard = suite_lock();
    let env = FlowEnv::new();
    let jobs = vec![
        BatchJob::from_circuit("rca4", generators::ripple_carry_adder(4, &env.library)),
        BatchJob::from_circuit("par8", generators::parity_tree(8, &env.library)),
    ];
    let matrix = vec![ScenarioSpec::a(1), ScenarioSpec::a(2)];
    // One worker visits the grid in order; the second visit is
    // (rca4, A#2).
    arm_nth("batch-cell", Fault::Panic, 2);
    let results = BatchRunner::new(Flow::from_circuit(tr_netlist::Circuit::new("t")))
        .threads(1)
        .run(&env, &jobs, &matrix, |_| {});
    assert_eq!(results.len(), 4);
    let (failed, ok): (Vec<_>, Vec<_>) = results.iter().partition(|r| r.outcome.is_err());
    assert_eq!(ok.len(), 3, "the other cells must complete");
    assert_eq!(failed.len(), 1, "exactly the armed cell fails");
    assert_eq!(failed[0].job, "rca4");
    assert_eq!(failed[0].scenario, "A#2");
    match failed[0].outcome.as_ref().unwrap_err() {
        Error::Panicked(msg) => {
            assert!(msg.contains("injected fault"), "payload survives: {msg}")
        }
        other => panic!("expected Error::Panicked, got {other}"),
    }
    for r in ok {
        let report = r.outcome.as_ref().unwrap();
        assert!(report.power.model_after_w > 0.0);
        assert!(!report.degraded);
    }
    disarm_all();
}
