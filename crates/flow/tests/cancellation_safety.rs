//! Cancellation safety, property-tested: a governed engine that trips
//! mid-operation must remain fully usable. For randomized trip points
//! (a [`Governor::with_trip_after`] work budget) across the three
//! long-running exact-backend operations — the statistics walk
//! (`exact_stats`), the dirty-cone sweep (`repropagate`) and the
//! reorder fixpoint loop — we require that
//!
//! 1. no BDD root protection leaks: `protected_count` returns to its
//!    pre-operation baseline whether or not the governor tripped, and
//! 2. detaching the governor and re-running *from the same engine*
//!    matches a never-governed fresh engine to 1e-12.

use proptest::prelude::*;
use std::sync::OnceLock;
use tr_bdd::{BddError, BuildOptions, CircuitBdds};
use tr_boolean::SignalStats;
use tr_flow::Governor;
use tr_gatelib::Library;
use tr_netlist::{generators, Circuit, CompiledCircuit, GateId};
use tr_power::{IncrementalPropagator, PropagationError, PropagationMode, PropagatorOptions};
use tr_reorder::{optimize_to_fixpoint_governed, FixpointOptions, Objective};

fn library() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(Library::standard)
}

fn model() -> &'static tr_power::PowerModel {
    static MODEL: OnceLock<tr_power::PowerModel> = OnceLock::new();
    MODEL.get_or_init(|| tr_power::PowerModel::new(library(), tr_gatelib::Process::default()))
}

/// The reconvergent workhorse: enough cache-missing BDD work that small
/// trip budgets interrupt mid-walk, small enough to property-test.
fn test_circuit() -> Circuit {
    generators::ripple_carry_adder(4, library())
}

fn pi_stats(raw: &[(f64, f64)], n: usize) -> Vec<SignalStats> {
    raw[..n]
        .iter()
        .map(|&(p, d)| SignalStats::new(p, d))
        .collect()
}

fn assert_stats_match(same: &[SignalStats], fresh: &[SignalStats]) {
    assert_eq!(same.len(), fresh.len());
    for (net, (a, b)) in same.iter().zip(fresh).enumerate() {
        assert!(
            (a.probability() - b.probability()).abs() <= 1e-12,
            "net {net}: P {} vs {}",
            a.probability(),
            b.probability()
        );
        let tol = 1e-12 * a.density().abs().max(b.density().abs()).max(1.0);
        assert!(
            (a.density() - b.density()).abs() <= tol,
            "net {net}: D {} vs {}",
            a.density(),
            b.density()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `exact_stats` interrupted at a random point, then re-run
    /// ungoverned from the same engine.
    #[test]
    fn interrupted_exact_stats_engine_stays_usable(
        raw in prop::collection::vec((0.0f64..=1.0, 0.0f64..1.0e6), 16),
        trip in 0u64..400,
    ) {
        let circuit = test_circuit();
        let compiled = CompiledCircuit::compile(&circuit, library()).unwrap();
        let stats = pi_stats(&raw, circuit.primary_inputs().len());

        let mut engine =
            CircuitBdds::build(&compiled, library(), BuildOptions::default()).unwrap();
        let baseline = engine.stats().protected_count;

        engine.set_governor(Some(Governor::with_trip_after(trip)));
        let governed = engine.exact_stats(&stats);
        prop_assert_eq!(engine.stats().protected_count, baseline);

        engine.set_governor(None);
        let rerun = engine.exact_stats(&stats).expect("ungoverned rerun");
        prop_assert_eq!(engine.stats().protected_count, baseline);

        let mut fresh =
            CircuitBdds::build(&compiled, library(), BuildOptions::default()).unwrap();
        let reference = fresh.exact_stats(&stats).unwrap();
        assert_stats_match(&rerun, &reference);
        // If the governed attempt did complete, it too must agree.
        if let Ok(governed) = governed {
            assert_stats_match(&governed, &reference);
        }
    }

    /// `repropagate` (every gate dirty — the worst-case cone) interrupted
    /// at a random point, then re-run ungoverned from the same engine.
    #[test]
    fn interrupted_repropagate_engine_stays_usable(
        raw in prop::collection::vec((0.0f64..=1.0, 0.0f64..1.0e6), 16),
        trip in 0u64..400,
    ) {
        let circuit = test_circuit();
        let compiled = CompiledCircuit::compile(&circuit, library()).unwrap();
        let stats = pi_stats(&raw, circuit.primary_inputs().len());
        let all_gates: Vec<GateId> = (0..compiled.gates().len()).map(GateId).collect();

        let mut engine =
            CircuitBdds::build(&compiled, library(), BuildOptions::default()).unwrap();
        let baseline = engine.stats().protected_count;

        engine.set_governor(Some(Governor::with_trip_after(trip)));
        let _ = engine.repropagate(&compiled, library(), &all_gates);
        prop_assert_eq!(engine.stats().protected_count, baseline);

        engine.set_governor(None);
        // Reordering is config-only (§4.2): recomposing every gate must
        // hash-cons back to the same roots — no net changes.
        let changed = engine
            .repropagate(&compiled, library(), &all_gates)
            .expect("ungoverned rerun");
        prop_assert_eq!(changed.len(), 0);
        prop_assert_eq!(engine.stats().protected_count, baseline);

        let rerun = engine.exact_stats(&stats).expect("stats after reprop");
        let mut fresh =
            CircuitBdds::build(&compiled, library(), BuildOptions::default()).unwrap();
        assert_stats_match(&rerun, &fresh.exact_stats(&stats).unwrap());
    }

    /// The reorder fixpoint loop interrupted at a random point, then
    /// re-run ungoverned *with the same propagator*. Because reordering
    /// never changes a net's Boolean function, the propagator's
    /// statistics stay valid for every intermediate configuration, so
    /// the retry must land on the fresh run's answer exactly.
    #[test]
    fn interrupted_fixpoint_retries_to_the_same_answer(
        trip in 0u64..2000,
    ) {
        let circuit = test_circuit();
        let stats: Vec<SignalStats> = (0..circuit.primary_inputs().len())
            .map(|i| SignalStats::new(0.3 + 0.05 * (i as f64 % 8.0), 2.0e5))
            .collect();
        let options = FixpointOptions {
            objective: Objective::MinimizePower,
            ..FixpointOptions::default()
        };

        let build = || {
            IncrementalPropagator::new_with(
                &circuit,
                library(),
                &stats,
                PropagationMode::ExactBdd,
                &PropagatorOptions::default(),
            )
            .expect("exact build fits the default budget")
        };

        let mut reference_prop = build();
        let reference = optimize_to_fixpoint_governed(
            &circuit,
            library(),
            model(),
            &mut reference_prop,
            options,
            None,
        )
        .expect("ungoverned reference run");

        // Build ungoverned (a tiny trip budget would abort the build
        // itself), then attach the governor for the loop under test.
        let governor = Governor::with_trip_after(trip);
        let mut prop = build();
        prop.set_governor(Some(governor.clone()));
        let governed = optimize_to_fixpoint_governed(
            &circuit,
            library(),
            model(),
            &mut prop,
            options,
            Some(&governor),
        );
        match governed {
            Err(PropagationError::Interrupted(_)) => {}
            Err(other) => panic!("only Interrupted is expected: {other}"),
            Ok(ref report) => {
                let rel = (report.result.power_after - reference.result.power_after).abs()
                    / reference.result.power_after;
                prop_assert!(rel <= 1e-12, "governed-but-untripped run diverged: {rel}");
            }
        }

        prop.set_governor(None);
        let retried = optimize_to_fixpoint_governed(
            &circuit,
            library(),
            model(),
            &mut prop,
            options,
            None,
        )
        .expect("ungoverned retry from the same propagator");
        let rel = (retried.result.power_after - reference.result.power_after).abs()
            / reference.result.power_after;
        prop_assert!(rel <= 1e-12, "retry diverged from fresh run: {rel}");
        prop_assert_eq!(retried.result.changed_gates, reference.result.changed_gates);
    }
}

/// A zero work budget must actually interrupt the statistics walk — the
/// proptest above would be vacuous if small budgets never tripped.
#[test]
fn zero_work_budget_interrupts_exact_stats() {
    let circuit = test_circuit();
    let compiled = CompiledCircuit::compile(&circuit, library()).unwrap();
    let stats = vec![SignalStats::new(0.5, 1.0e5); circuit.primary_inputs().len()];
    let mut engine = CircuitBdds::build(&compiled, library(), BuildOptions::default()).unwrap();
    engine.set_governor(Some(Governor::with_trip_after(0)));
    match engine.exact_stats(&stats) {
        Err(BddError::Interrupted(i)) => {
            assert_eq!(i.reason, tr_flow::TripReason::WorkLimit);
        }
        other => panic!("expected Interrupted(WorkLimit), got {other:?}"),
    }
}
