//! Property tests for the full format path of the pipeline:
//!
//! ```text
//! generic logic ──bench::write──▶ .bench ─┐
//!                                          ├─▶ parse → map → set configs
//! generic logic ──minterm writer─▶ .blif ─┘        │
//!                                                   ▼
//!                          .trnet ◀─format::write── Circuit
//!                             │
//!                             └─▶ format::parse → CompiledCircuit
//! ```
//!
//! asserting functional equivalence at every hop and exact configuration
//! preservation across the native round-trip.

use proptest::prelude::*;
use tr_flow::{parse_netlist, FlowEnv, NetlistFormat};
use tr_netlist::{bench, format, CompiledCircuit, GateId, GenericCircuit, GenericOp};

/// One synthetic gate: output name, operator, input names.
type GateSpec = (String, GenericOp, Vec<String>);

/// Builds a random-but-seeded combinational netlist spec: `n_inputs`
/// primary inputs `i0..`, `n_gates` gates `g0..` whose operands are
/// drawn from all earlier signals, and the last two gates as outputs.
fn random_spec(n_inputs: usize, n_gates: usize, seed: u64) -> (Vec<String>, Vec<GateSpec>) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move |bound: usize| {
        // xorshift64* — deterministic across platforms.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % bound.max(1)
    };
    let ops = [
        GenericOp::And,
        GenericOp::Or,
        GenericOp::Nand,
        GenericOp::Nor,
        GenericOp::Not,
        GenericOp::Buff,
        GenericOp::Xor,
        GenericOp::Xnor,
    ];
    let inputs: Vec<String> = (0..n_inputs).map(|i| format!("i{i}")).collect();
    let mut signals = inputs.clone();
    let mut gates: Vec<GateSpec> = Vec::with_capacity(n_gates);
    for g in 0..n_gates.saturating_sub(2) {
        let op = ops[next(ops.len())];
        let arity = match op {
            GenericOp::Not | GenericOp::Buff => 1,
            _ => 2 + next(2),
        };
        // Distinct operands (repeated operands are legal but make the
        // minterm-table BLIF writer's variable list ambiguous).
        let mut operands = Vec::new();
        while operands.len() < arity.min(signals.len()) {
            let pick = signals[next(signals.len())].clone();
            if !operands.contains(&pick) {
                operands.push(pick);
            }
        }
        let name = format!("g{g}");
        signals.push(name.clone());
        gates.push((name, op, operands));
    }
    // The last two gates become the primary outputs. Each consumes the
    // signal created immediately before it, so no earlier node can be
    // structurally identical: the mapper can never CSE/alias them into
    // one net (which is legal for generic outputs but would make the
    // output-vector comparison ambiguous).
    for op in [GenericOp::Xor, GenericOp::Nand] {
        let fresh = signals.last().expect("non-empty").clone();
        let mut other = signals[next(signals.len())].clone();
        while other == fresh {
            other = signals[next(signals.len())].clone();
        }
        let name = format!("g{}", gates.len());
        signals.push(name.clone());
        gates.push((name, op, vec![fresh, other]));
    }
    (inputs, gates)
}

/// Materializes the spec as a [`GenericCircuit`] with the last two gates
/// (or all gates, if fewer) as primary outputs.
fn build_generic(name: &str, inputs: &[String], gates: &[GateSpec]) -> GenericCircuit {
    let mut c = GenericCircuit::new(name);
    for i in inputs {
        c.add_input(i);
    }
    for (out, op, ins) in gates {
        let refs: Vec<&str> = ins.iter().map(String::as_str).collect();
        c.add_gate(out, *op, &refs);
    }
    for (out, _, _) in gates.iter().rev().take(2) {
        c.add_output(out);
    }
    c
}

/// Writes the spec as a minimal BLIF document: every gate becomes a
/// `.names` minterm table (one `0`/`1` row per true assignment).
fn write_blif(name: &str, inputs: &[String], gates: &[GateSpec]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".model {name}");
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<&str> = gates
        .iter()
        .rev()
        .take(2)
        .map(|(o, _, _)| o.as_str())
        .collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    for (gate_out, op, ins) in gates {
        let _ = writeln!(out, ".names {} {gate_out}", ins.join(" "));
        for minterm in 0..(1usize << ins.len()) {
            let args: Vec<bool> = (0..ins.len()).map(|b| (minterm >> b) & 1 == 1).collect();
            if op.eval(&args) {
                let row: String = args.iter().map(|&v| if v { '1' } else { '0' }).collect();
                let _ = writeln!(out, "{row} 1");
            }
        }
    }
    out.push_str(".end\n");
    out
}

/// Output values of a mapped circuit, in primary-output order.
fn outputs_of(
    circuit: &tr_netlist::Circuit,
    library: &tr_gatelib::Library,
    inputs: &[bool],
) -> Vec<bool> {
    let nets = circuit.evaluate(library, inputs);
    circuit
        .primary_outputs()
        .iter()
        .map(|o| nets[o.0])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `.bench` and `.blif` spellings of the same logic map to circuits
    /// that agree with the generic evaluator; the optimized circuit
    /// survives a `.trnet` round-trip with every configuration intact.
    #[test]
    fn bench_blif_trnet_pipeline_preserves_function_and_configs(
        seed in 0u64..500,
        n_gates in 6usize..28,
        vectors in prop::collection::vec(any::<u64>(), 6),
    ) {
        let env = FlowEnv::new();
        let n_inputs = 6usize;
        let (inputs, gates) = random_spec(n_inputs, n_gates, seed);
        let generic = build_generic("pipe", &inputs, &gates);

        // Hop 1: the same logic through both generic front ends.
        let bench_text = bench::write(&generic);
        let from_bench = parse_netlist(
            "pipe", &bench_text, NetlistFormat::Bench, &env.library, &Default::default(),
        ).expect("bench parses");
        let blif_text = write_blif("pipe", &inputs, &gates);
        let from_blif = parse_netlist(
            "pipe", &blif_text, NetlistFormat::Blif, &env.library, &Default::default(),
        ).expect("blif parses");
        prop_assert!(from_bench.validate(&env.library).is_ok());
        prop_assert!(from_blif.validate(&env.library).is_ok());

        // Hop 2: scatter non-default configurations across the gates
        // (deterministically), as the optimizer would.
        let mut configured = from_bench.clone();
        let compiled = CompiledCircuit::compile(&configured, &env.library).expect("compiles");
        for (i, gate) in compiled.gates().iter().enumerate() {
            let choice = (seed as usize + i * 7) % gate.n_configs as usize;
            configured.set_config(GateId(i), choice);
        }

        // Hop 3: native round-trip — exact identity, configs included.
        let trnet_text = format::write(&configured);
        let reparsed = parse_netlist(
            "pipe", &trnet_text, NetlistFormat::Trnet, &env.library, &Default::default(),
        ).expect("trnet parses");
        prop_assert_eq!(&reparsed, &configured);
        prop_assert!(CompiledCircuit::compile(&reparsed, &env.library).is_ok());

        // Functional equivalence of every hop against the generic logic.
        for v in &vectors {
            let assignment: Vec<bool> = (0..n_inputs).map(|b| (v >> b) & 1 == 1).collect();
            let want = generic.evaluate_outputs(&assignment);
            prop_assert_eq!(outputs_of(&from_bench, &env.library, &assignment), want.clone());
            prop_assert_eq!(outputs_of(&from_blif, &env.library, &assignment), want.clone());
            prop_assert_eq!(outputs_of(&reparsed, &env.library, &assignment), want);
        }
    }
}
