//! Golden test pinning the `FlowReport` JSON schema.
//!
//! Downstream consumers (dashboards, the batch driver's JSONL output,
//! future server endpoints) key on these field names and units. If this
//! test fails, you are changing the public data contract: bump it
//! consciously, updating README's batch walkthrough alongside.

use tr_flow::{
    DegradeEvent, DelayReport, FlowReport, GateReport, PerfReport, PowerReport, SimSummary,
    StageTimings,
};

/// A fully-populated report with hand-picked values (no floats that
/// format differently across platforms; Rust's shortest-round-trip
/// float formatting is deterministic for these).
fn sample_report() -> FlowReport {
    FlowReport {
        circuit: "c17".into(),
        scenario: "A#42".into(),
        gates: 6,
        inputs: 5,
        outputs: 2,
        depth: 3,
        objective: "min".into(),
        delay_bound: "none".into(),
        prob_mode: "indep".into(),
        degraded: true,
        degrade_reason: Some("bdd interrupted (deadline) after 50 ms and 4096 work units".into()),
        degrade_rung: Some("independent-fallback".into()),
        degrade_events: vec![
            DegradeEvent {
                rung: "info-reorder-retry".into(),
                phase: "stats".into(),
                elapsed_ms: 50.5,
            },
            DegradeEvent {
                rung: "independent-fallback".into(),
                phase: "stats".into(),
                elapsed_ms: 61.25,
            },
        ],
        independence_error: None,
        partition_regions: Some(11),
        max_cut_width: Some(24),
        partition_error_bound: Some(0.5),
        changed_gates: 2,
        fixpoint_iters: Some(2),
        repropagations: 1,
        stale_power_discrepancy_w: Some(0.0),
        power: PowerReport {
            model_before_w: 4.5e-7,
            model_after_w: 4.0e-7,
            reduction_percent: 11.125,
            model_best_w: Some(4.0e-7),
            model_worst_w: Some(5.0e-7),
            headroom_percent: Some(20.0),
        },
        delay: DelayReport {
            critical_path_before_s: 5.0e-10,
            critical_path_after_s: 5.5e-10,
            increase_percent: 10.0,
        },
        sim: Some(SimSummary {
            duration_s: 0.0004,
            warmup_s: 0.00004,
            seed: 20817,
            baseline_w: None,
            optimized_w: 5.25e-7,
            best_w: Some(5.25e-7),
            worst_w: Some(6.0e-7),
            reduction_percent: Some(12.5),
        }),
        per_gate: Some(vec![GateReport {
            gate: "n10".into(),
            cell: "nand2".into(),
            config_before: 0,
            config_after: 1,
            power_w: 2.5e-8,
        }]),
        perf: PerfReport {
            peak_live_nodes: Some(4096),
            cache_hit_rate: Some(0.75),
            region_utilization: Some(1.0),
        },
        timings: StageTimings {
            load_s: 0.001,
            stats_s: 0.0005,
            optimize_s: 0.25,
            timing_s: 0.002,
            sim_s: 1.5,
            write_s: 0.0,
            total_s: 1.7535,
        },
    }
}

/// The pinned JSON serialization, byte for byte.
const GOLDEN_JSON: &str = concat!(
    "{\"circuit\":\"c17\",\"scenario\":\"A#42\",\"gates\":6,\"inputs\":5,\"outputs\":2,",
    "\"depth\":3,\"objective\":\"min\",\"delay_bound\":\"none\",\"prob_mode\":\"indep\",",
    "\"degraded\":true,",
    "\"degrade_reason\":\"bdd interrupted (deadline) after 50 ms and 4096 work units\",",
    "\"degrade_rung\":\"independent-fallback\",",
    "\"degrade_events\":[",
    "{\"rung\":\"info-reorder-retry\",\"phase\":\"stats\",\"elapsed_ms\":50.5},",
    "{\"rung\":\"independent-fallback\",\"phase\":\"stats\",\"elapsed_ms\":61.25}],",
    "\"independence_error\":null,\"partition_regions\":11,\"max_cut_width\":24,",
    "\"partition_error_bound\":0.5,\"changed_gates\":2,",
    "\"fixpoint_iters\":2,\"repropagations\":1,\"stale_power_discrepancy_w\":0,",
    "\"power\":{\"model_before_w\":0.00000045,\"model_after_w\":0.0000004,",
    "\"reduction_percent\":11.125,\"model_best_w\":0.0000004,\"model_worst_w\":0.0000005,",
    "\"headroom_percent\":20},",
    "\"delay\":{\"critical_path_before_s\":0.0000000005,",
    "\"critical_path_after_s\":0.00000000055,\"increase_percent\":10},",
    "\"sim\":{\"duration_s\":0.0004,\"warmup_s\":0.00004,\"seed\":20817,",
    "\"baseline_w\":null,\"optimized_w\":0.000000525,\"best_w\":0.000000525,",
    "\"worst_w\":0.0000006,\"reduction_percent\":12.5},",
    "\"per_gate\":[{\"gate\":\"n10\",\"cell\":\"nand2\",\"config_before\":0,",
    "\"config_after\":1,\"power_w\":0.000000025}],",
    "\"perf\":{\"peak_live_nodes\":4096,\"cache_hit_rate\":0.75,\"region_utilization\":1},",
    "\"timings\":{\"load_s\":0.001,\"stats_s\":0.0005,\"optimize_s\":0.25,",
    "\"timing_s\":0.002,\"sim_s\":1.5,\"write_s\":0,\"total_s\":1.7535}}",
);

#[test]
fn json_schema_is_pinned() {
    assert_eq!(sample_report().to_json(), GOLDEN_JSON);
}

#[test]
fn json_nulls_for_absent_sections() {
    let mut report = sample_report();
    report.sim = None;
    report.per_gate = None;
    report.power.model_best_w = None;
    report.power.model_worst_w = None;
    report.power.headroom_percent = None;
    let json = report.to_json();
    assert!(json.contains("\"sim\":null"));
    assert!(json.contains("\"per_gate\":null"));
    assert!(json.contains("\"model_best_w\":null"));
}

/// The CSV header is part of the same contract.
#[test]
fn csv_header_is_pinned() {
    assert_eq!(
        FlowReport::csv_header(),
        "circuit,scenario,gates,inputs,outputs,depth,objective,delay_bound,prob_mode,\
         degraded,degrade_reason,degrade_rung,degrade_events,\
         independence_error,partition_regions,max_cut_width,partition_error_bound,\
         changed_gates,\
         fixpoint_iters,repropagations,stale_power_discrepancy_w,\
         model_before_w,model_after_w,reduction_percent,model_best_w,model_worst_w,\
         headroom_percent,critical_path_before_s,critical_path_after_s,delay_increase_percent,\
         sim_duration_s,sim_baseline_w,sim_optimized_w,sim_best_w,sim_worst_w,\
         sim_reduction_percent,peak_live_nodes,cache_hit_rate,region_utilization,\
         load_s,stats_s,optimize_s,timing_s,sim_s,write_s,total_s"
    );
}

/// A real end-to-end run emits exactly the pinned fields (values vary;
/// the key set must not).
#[test]
fn live_report_matches_the_schema_key_set() {
    let env = tr_flow::FlowEnv::new();
    let circuit = tr_netlist::generators::ripple_carry_adder(2, &env.library);
    let report = tr_flow::Flow::from_circuit(circuit)
        .per_gate(true)
        .run(&env)
        .expect("flow runs");
    let live = report.to_json();
    for key in [
        "\"circuit\":",
        "\"scenario\":",
        "\"gates\":",
        "\"inputs\":",
        "\"outputs\":",
        "\"depth\":",
        "\"objective\":",
        "\"delay_bound\":",
        "\"prob_mode\":",
        "\"degraded\":",
        "\"degrade_reason\":",
        "\"degrade_rung\":",
        "\"degrade_events\":",
        "\"independence_error\":",
        "\"partition_regions\":",
        "\"max_cut_width\":",
        "\"partition_error_bound\":",
        "\"changed_gates\":",
        "\"fixpoint_iters\":",
        "\"repropagations\":",
        "\"stale_power_discrepancy_w\":",
        "\"power\":",
        "\"model_before_w\":",
        "\"model_after_w\":",
        "\"reduction_percent\":",
        "\"model_best_w\":",
        "\"model_worst_w\":",
        "\"headroom_percent\":",
        "\"delay\":",
        "\"critical_path_before_s\":",
        "\"critical_path_after_s\":",
        "\"increase_percent\":",
        "\"sim\":",
        "\"per_gate\":",
        "\"config_before\":",
        "\"config_after\":",
        "\"power_w\":",
        "\"perf\":",
        "\"peak_live_nodes\":",
        "\"cache_hit_rate\":",
        "\"region_utilization\":",
        "\"timings\":",
        "\"load_s\":",
        "\"stats_s\":",
        "\"optimize_s\":",
        "\"timing_s\":",
        "\"sim_s\":",
        "\"write_s\":",
        "\"total_s\":",
    ] {
        assert!(live.contains(key), "missing {key} in {live}");
    }
}
