//! Run one [`Flow`] template over many circuits × many scenarios on a
//! work-stealing thread pool, streaming one report per (circuit,
//! scenario) as it completes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::env::FlowEnv;
use crate::error::Error;
use crate::flow::Flow;
use crate::report::FlowReport;
use crate::source::{NetlistFormat, Source};
use tr_netlist::Circuit;
use tr_power::scenario::Scenario;
use tr_power::Scratch;

/// One named input of a batch.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name (file stem or circuit name).
    pub name: String,
    /// Where the circuit comes from.
    pub source: Source,
}

impl BatchJob {
    /// A job reading one netlist file.
    pub fn from_path(path: impl AsRef<Path>) -> Self {
        let source = Source::Path(path.as_ref().to_path_buf());
        BatchJob {
            name: source.name(),
            source,
        }
    }

    /// A job over an in-memory circuit under an explicit name.
    pub fn from_circuit(name: impl Into<String>, circuit: Circuit) -> Self {
        BatchJob {
            name: name.into(),
            source: Source::Circuit(circuit),
        }
    }

    /// All recognizable netlist files (`.bench`, `.blif`, `.trnet`)
    /// directly inside `dir`, sorted by name.
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Vec<BatchJob>, Error> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir).map_err(|e| Error::io(dir, e))?;
        let mut jobs = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Error::io(dir, e))?;
            let path = entry.path();
            if path.is_file() && NetlistFormat::detect(&path).is_some() {
                jobs.push(BatchJob::from_path(&path));
            }
        }
        jobs.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(jobs)
    }
}

/// One cell of the scenario matrix: a labeled scenario + seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Report label (`A#<seed>`, `B@<clock_hz>`).
    pub label: String,
    /// The scenario.
    pub scenario: Scenario,
    /// Input-statistics seed (Scenario B ignores it).
    pub seed: u64,
}

impl ScenarioSpec {
    /// Scenario A with this seed.
    pub fn a(seed: u64) -> Self {
        ScenarioSpec {
            label: format!("A#{seed}"),
            scenario: Scenario::a(),
            seed,
        }
    }

    /// Scenario B at this clock frequency.
    pub fn b(clock_hz: f64) -> Self {
        ScenarioSpec {
            label: format!("B@{clock_hz}"),
            scenario: Scenario::B { clock_hz },
            seed: 0,
        }
    }

    /// Parses one spec: `a:<seed>` or `b:<clock_hz>` (e.g. `a:42`,
    /// `b:2e7`).
    pub fn parse(token: &str) -> Result<Self, Error> {
        let (kind, value) = token
            .split_once(':')
            .ok_or_else(|| Error::Usage(format!("bad scenario `{token}` (want a:SEED or b:HZ)")))?;
        match kind {
            "a" | "A" => value
                .parse::<u64>()
                .map(ScenarioSpec::a)
                .map_err(|e| Error::Usage(format!("bad scenario seed `{value}`: {e}"))),
            "b" | "B" => {
                let hz = value
                    .parse::<f64>()
                    .map_err(|e| Error::Usage(format!("bad clock `{value}`: {e}")))?;
                if !(hz.is_finite() && hz > 0.0) {
                    return Err(Error::Usage(format!("bad clock `{value}`: must be > 0")));
                }
                Ok(ScenarioSpec::b(hz))
            }
            other => Err(Error::Usage(format!(
                "bad scenario kind `{other}` (want `a` or `b`)"
            ))),
        }
    }

    /// Parses a comma-separated matrix, e.g. `a:1,a:2,b:2e7,b:5e7`.
    pub fn parse_matrix(s: &str) -> Result<Vec<ScenarioSpec>, Error> {
        let specs: Result<Vec<_>, _> = s
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| ScenarioSpec::parse(t.trim()))
            .collect();
        let specs = specs?;
        if specs.is_empty() {
            return Err(Error::Usage("empty scenario matrix".into()));
        }
        Ok(specs)
    }

    /// The default 4-entry matrix: two Scenario A seeds and two Scenario
    /// B clocks (20 MHz and 50 MHz).
    pub fn default_matrix() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::a(1),
            ScenarioSpec::a(2),
            ScenarioSpec::b(2.0e7),
            ScenarioSpec::b(5.0e7),
        ]
    }
}

/// The outcome of one (circuit, scenario) cell of the batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Job name.
    pub job: String,
    /// Scenario label.
    pub scenario: String,
    /// The report, or why this cell failed.
    pub outcome: Result<FlowReport, Error>,
}

/// Runs a [`Flow`] template over jobs × scenarios on a thread pool.
///
/// Workers pull (circuit, scenario) cells off a shared atomic queue —
/// work stealing in all but name: a thread stuck on a big circuit simply
/// claims fewer cells — and reuse one `Scratch` arena each across all
/// their runs. Each job's netlist is parsed and mapped once, not once
/// per scenario. Results stream to the caller's callback in completion
/// order.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    template: Flow,
    threads: usize,
}

impl BatchRunner {
    /// A runner stamping `template` over every (job, scenario) cell. The
    /// template's own source and scenario are ignored (and the source is
    /// dropped here, so a template built from a large circuit costs
    /// nothing per cell); its objective, delay bound, mapper options,
    /// simulation and per-gate settings apply to every cell. Per-cell
    /// optimization is single-threaded — parallelism comes from the
    /// pool. Templates that write `--out`/`--vcd` artifacts are rejected
    /// at [`BatchRunner::run`] time: every cell would clobber the same
    /// file.
    pub fn new(template: Flow) -> Self {
        BatchRunner {
            template: template
                .threads(1)
                .with_source(Source::Circuit(Circuit::new("template"))),
            threads: 1,
        }
    }

    /// Pool size (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` (same contract as
    /// [`Flow::threads`] and `tr_reorder::optimize_parallel` — this
    /// used to clamp silently while the others panicked).
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Runs the whole matrix; `on_result` fires once per result as it
    /// completes (in completion order, from the calling thread). A job
    /// whose netlist fails to load yields a single result carrying the
    /// typed error (scenario label `-`) instead of one per scenario;
    /// loaded jobs yield one result per scenario cell.
    pub fn run(
        &self,
        env: &FlowEnv,
        jobs: &[BatchJob],
        matrix: &[ScenarioSpec],
        mut on_result: impl FnMut(&BatchResult),
    ) -> Vec<BatchResult> {
        // One fixed output path across N×M concurrent cells would leave
        // whichever cell finished last; refuse rather than lose data.
        if self.template.writes_artifacts() {
            let result = BatchResult {
                job: "-".to_string(),
                scenario: "-".to_string(),
                outcome: Err(Error::Unsupported(
                    "batch templates cannot write --out/--vcd artifacts: \
                     every cell would overwrite the same file"
                        .into(),
                )),
            };
            on_result(&result);
            return vec![result];
        }
        // A traced template profiles the whole batch: one run-level
        // trace file with every worker on its own named track, instead
        // of each cell clobbering the same file (per-cell tracing is
        // only handled inside `Flow::run`, which batch bypasses).
        let trace_path = self.template.trace_path();
        if trace_path.is_some() {
            tr_trace::reset();
            tr_trace::enable();
            tr_trace::set_thread_name("batch-main");
        }
        // Parse/map each netlist once, up front; the workers then borrow
        // the circuits without any per-cell cloning.
        let mut results = Vec::with_capacity(jobs.len() * matrix.len());
        let mut loaded: Vec<(String, Circuit)> = Vec::with_capacity(jobs.len());
        for job in jobs {
            // The parser/mapper runs outside the worker fence, so it
            // gets its own: a panicking loader fails its job, not the
            // whole grid.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                job.source
                    .load(&env.library, self.template.map_options_value())
            }))
            .unwrap_or_else(|payload| Err(Error::Panicked(panic_message(payload))));
            match outcome {
                Ok(circuit) => loaded.push((job.name.clone(), circuit)),
                Err(e) => {
                    let result = BatchResult {
                        job: job.name.clone(),
                        scenario: "-".to_string(),
                        outcome: Err(e),
                    };
                    on_result(&result);
                    results.push(result);
                }
            }
        }

        let grid: Vec<(usize, usize)> = (0..loaded.len())
            .flat_map(|j| (0..matrix.len()).map(move |s| (j, s)))
            .collect();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<BatchResult>();

        std::thread::scope(|scope| {
            for w in 0..self.threads.min(grid.len().max(1)) {
                let tx = tx.clone();
                let next = &next;
                let grid = &grid;
                let loaded = &loaded;
                scope.spawn(move || {
                    tr_trace::set_thread_name(&format!("batch-worker-{w}"));
                    let mut scratch = Scratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(j, s)) = grid.get(i) else { break };
                        let (name, circuit) = &loaded[j];
                        let spec = &matrix[s];
                        let _cell = tr_trace::span!(
                            "batch.cell",
                            job = name.as_str(),
                            scenario = spec.label.as_str()
                        );
                        // Fence the cell: a panicking pipeline stage
                        // becomes this cell's reported outcome instead
                        // of tearing down the whole grid. The scratch
                        // arena is rebuilt afterwards — the unwound
                        // stage may have left it mid-update.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let _ = crate::faultpoint::hit("batch-cell");
                            self.template
                                .clone()
                                .scenario(spec.scenario, spec.seed)
                                .run_pipeline(env, circuit, name.clone(), 0.0, &mut scratch)
                                .map(|(report, _)| report)
                        }))
                        .unwrap_or_else(|payload| {
                            scratch = Scratch::new();
                            Err(Error::Panicked(panic_message(payload)))
                        });
                        if tx
                            .send(BatchResult {
                                job: name.clone(),
                                scenario: spec.label.clone(),
                                outcome,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for result in rx {
                on_result(&result);
                results.push(result);
            }
        });
        if let Some(path) = trace_path {
            tr_trace::disable();
            if let Err(e) = tr_trace::write_chrome_trace(path) {
                let result = BatchResult {
                    job: "-".to_string(),
                    scenario: "-".to_string(),
                    outcome: Err(Error::io(path, e)),
                };
                on_result(&result);
                results.push(result);
            }
        }
        results
    }
}

/// The human-readable payload of a caught panic (`panic!` with a string
/// or `String` — anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_netlist::generators;

    #[test]
    fn matrix_parsing() {
        let m = ScenarioSpec::parse_matrix("a:1, a:2 ,b:2e7,b:5e7").unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m[0].label, "A#1");
        assert_eq!(m[2].label, "B@20000000");
        assert!(ScenarioSpec::parse_matrix("").is_err());
        assert!(ScenarioSpec::parse("c:1").unwrap_err().is_usage());
        assert!(ScenarioSpec::parse("a:x").unwrap_err().is_usage());
        assert!(ScenarioSpec::parse("b:-5").unwrap_err().is_usage());
        assert_eq!(ScenarioSpec::default_matrix().len(), 4);
    }

    #[test]
    fn batch_covers_the_grid_and_matches_single_runs() {
        let env = FlowEnv::new();
        let jobs = vec![
            BatchJob::from_circuit("rca4", generators::ripple_carry_adder(4, &env.library)),
            BatchJob::from_circuit("par8", generators::parity_tree(8, &env.library)),
        ];
        let matrix = vec![
            ScenarioSpec::a(1),
            ScenarioSpec::a(2),
            ScenarioSpec::b(2.0e7),
        ];
        let mut streamed = 0usize;
        let results = BatchRunner::new(Flow::from_circuit(Circuit::new("template")))
            .threads(4)
            .run(&env, &jobs, &matrix, |_| streamed += 1);
        assert_eq!(results.len(), 6);
        assert_eq!(streamed, 6);
        for r in &results {
            let report = r.outcome.as_ref().expect("cell succeeded");
            assert_eq!(report.circuit, r.job);
            assert_eq!(report.scenario, r.scenario);
        }
        // A batch cell equals the same flow run standalone.
        let single = Flow::from_circuit(generators::ripple_carry_adder(4, &env.library))
            .scenario(Scenario::a(), 2)
            .run(&env)
            .unwrap();
        let cell = results
            .iter()
            .find(|r| r.job == "rca4" && r.scenario == "A#2")
            .unwrap();
        let cell = cell.outcome.as_ref().unwrap();
        assert_eq!(cell.power.model_after_w, single.power.model_after_w);
        assert_eq!(cell.changed_gates, single.changed_gates);
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn zero_threads_panics() {
        let _ = BatchRunner::new(Flow::from_circuit(Circuit::new("t"))).threads(0);
    }

    #[test]
    fn artifact_writing_templates_are_rejected() {
        let env = FlowEnv::new();
        let jobs = vec![BatchJob::from_circuit(
            "ok",
            generators::parity_tree(4, &env.library),
        )];
        let template = Flow::from_circuit(Circuit::new("t")).write_netlist("/tmp/clobbered.trnet");
        let results = BatchRunner::new(template).run(&env, &jobs, &[ScenarioSpec::a(1)], |_| {});
        assert_eq!(results.len(), 1);
        assert!(matches!(
            results[0].outcome.as_ref().unwrap_err(),
            Error::Unsupported(_)
        ));
    }

    #[test]
    fn load_failures_yield_one_typed_error_per_job() {
        let env = FlowEnv::new();
        let jobs = vec![
            BatchJob::from_path("/nonexistent/ghost.bench"),
            BatchJob::from_circuit("ok", generators::parity_tree(4, &env.library)),
        ];
        let matrix = vec![ScenarioSpec::a(1), ScenarioSpec::b(2.0e7)];
        let results = BatchRunner::new(Flow::from_circuit(Circuit::new("t")))
            .threads(2)
            .run(&env, &jobs, &matrix, |_| {});
        // One error for the unloadable job, one result per scenario for
        // the good one.
        assert_eq!(results.len(), 3);
        let failed: Vec<_> = results.iter().filter(|r| r.outcome.is_err()).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].job, "ghost");
        assert_eq!(failed[0].scenario, "-");
        // The original typed error survives (not stringified to Usage).
        assert!(matches!(
            failed[0].outcome.as_ref().unwrap_err(),
            Error::Io { .. }
        ));
    }
}
