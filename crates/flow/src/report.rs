//! The structured result of one flow run.
//!
//! A [`FlowReport`] is the pipeline's public data contract: everything a
//! caller needs to rank circuits, regenerate the paper's tables, or feed
//! a dashboard, serializable as one JSON object per run (`to_json`, the
//! schema is pinned by a golden test) or one CSV row per run
//! (`csv_header`/`to_csv_row`).
//!
//! Unit conventions, encoded in the field names: `_w` watts, `_s`
//! seconds, `_percent` percent.

use crate::json::{json_f64, json_opt_f64, json_opt_string, json_string};

/// One step down the degradation ladder, in the order the rungs were
/// hit. `degrade_rung` keeps only the deepest rung; this array is the
/// full history — which budgets tripped, in which pipeline phase, and
/// when.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeEvent {
    /// The rung taken (`shrink-regions`, `info-reorder-retry`,
    /// `independent-fallback` or `finish-ungoverned`).
    pub rung: String,
    /// Pipeline phase the trip was handled in (`stats`, `optimize`,
    /// `sim` or `boundary`).
    pub phase: String,
    /// Milliseconds from the start of the pipeline to the rung.
    pub elapsed_ms: f64,
}

/// Engine-health block of the run: the self-profiling numbers that
/// complement the per-stage wall-times in [`StageTimings`]. All fields
/// are `None` when the statistics backend has no BDD engine (`indep`,
/// `monte`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfReport {
    /// High-water mark of the engine's live node count (the monolithic
    /// engine under `bdd`; the shared region engine under `part`).
    pub peak_live_nodes: Option<usize>,
    /// Combined ITE/restrict op-cache hit fraction over the whole run.
    pub cache_hit_rate: Option<f64>,
    /// Fraction of region-schedule thread-time spent evaluating regions
    /// (`part` only). The flow's incremental propagator evaluates its
    /// region schedule serially, so this is 1.0 by the
    /// [`tr_power::PartitionReport::pool_utilization`] convention; the
    /// parallel pool's measured utilization is surfaced there.
    pub region_utilization: Option<f64>,
}

/// Model-power outcome of the optimization stage.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Model power of the circuit as loaded (W).
    pub model_before_w: f64,
    /// Model power after optimizing toward the objective (W).
    pub model_after_w: f64,
    /// `100·(before − after)/before` — positive means the objective
    /// improved the circuit.
    pub reduction_percent: f64,
    /// Model power of the best (minimum-power) ordering, when the
    /// headroom pass ran (W).
    pub model_best_w: Option<f64>,
    /// Model power of the worst (maximum-power) ordering, when the
    /// headroom pass ran (W).
    pub model_worst_w: Option<f64>,
    /// `100·(worst − best)/worst` — the paper's M column.
    pub headroom_percent: Option<f64>,
}

/// Static-timing outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayReport {
    /// Critical-path delay of the circuit as loaded (s).
    pub critical_path_before_s: f64,
    /// Critical-path delay of the optimized circuit (s).
    pub critical_path_after_s: f64,
    /// `100·(after − before)/before` — the paper's D column.
    pub increase_percent: f64,
}

/// Switch-level simulation outcome (present when simulation ran).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// Simulated time span (s).
    pub duration_s: f64,
    /// Discarded warm-up interval (s).
    pub warmup_s: f64,
    /// Waveform seed.
    pub seed: u64,
    /// Simulated power of the circuit as loaded, when the baseline
    /// simulation ran (W).
    pub baseline_w: Option<f64>,
    /// Simulated power of the optimized circuit (W).
    pub optimized_w: f64,
    /// Simulated power of the best (minimum-power) ordering, when the
    /// headroom pass ran (W). Equals `optimized_w` when minimizing.
    pub best_w: Option<f64>,
    /// Simulated power of the worst (maximum-power) ordering, when the
    /// headroom pass ran (W). Equals `optimized_w` when maximizing.
    pub worst_w: Option<f64>,
    /// `100·(worst − best)/worst` when both orderings were simulated —
    /// the paper's S column.
    pub reduction_percent: Option<f64>,
}

/// Per-gate detail row (present when requested via
/// [`Flow::per_gate`](crate::Flow::per_gate)).
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Output-net name of the gate.
    pub gate: String,
    /// Library cell name.
    pub cell: String,
    /// Configuration index before optimization.
    pub config_before: usize,
    /// Configuration index chosen by the optimizer.
    pub config_after: usize,
    /// Model power of the gate in its chosen configuration (W).
    pub power_w: f64,
}

/// Wall-clock seconds spent in each pipeline stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageTimings {
    /// Read + parse + technology-map the source.
    pub load_s: f64,
    /// Draw input statistics and propagate them.
    pub stats_s: f64,
    /// Optimization (including the headroom counterpart pass).
    pub optimize_s: f64,
    /// Static timing analysis.
    pub timing_s: f64,
    /// Switch-level simulation (0 when simulation is off).
    pub sim_s: f64,
    /// Netlist/VCD output (0 when nothing is written).
    pub write_s: f64,
    /// End-to-end run time.
    pub total_s: f64,
}

/// The structured result of one [`Flow`](crate::Flow) run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Circuit name (file stem or the circuit's own name).
    pub circuit: String,
    /// Scenario label (e.g. `A#42` for Scenario A with seed 42, `B@2e7`
    /// for Scenario B at 20 MHz, `explicit` for caller-supplied stats).
    pub scenario: String,
    /// Gate count.
    pub gates: usize,
    /// Primary-input count.
    pub inputs: usize,
    /// Primary-output count.
    pub outputs: usize,
    /// Logic depth (gates on the longest topological path).
    pub depth: usize,
    /// Optimization objective (`min` or `max`).
    pub objective: String,
    /// Delay-bound mode (`none`, `local` or `slack`).
    pub delay_bound: String,
    /// Probability backend the statistics were *actually* computed with
    /// (`indep`, `bdd` or `monte`). When the degradation ladder fell
    /// back, this is the fallback backend, with `degraded`,
    /// `degrade_reason` and `degrade_rung` telling the story.
    pub prob_mode: String,
    /// Whether a resource budget tripped and the run completed through
    /// the degradation ladder instead of aborting.
    pub degraded: bool,
    /// The failure that started the degradation (e.g. the node-limit or
    /// deadline message), when `degraded`.
    pub degrade_reason: Option<String>,
    /// The deepest ladder rung reached: `info-reorder-retry` (exact
    /// backend rebuilt under the information-measure order),
    /// `shrink-regions` (partitioned backend rebuilt with halved
    /// per-region budgets), `independent-fallback` (statistics
    /// recomputed under the independence assumption), or
    /// `finish-ungoverned` (statistics survived; a later stage finished
    /// without deadline enforcement).
    pub degrade_rung: Option<String>,
    /// Every ladder rung taken, in order — empty when the run never
    /// degraded. `degrade_rung` is always the last entry's rung.
    pub degrade_events: Vec<DegradeEvent>,
    /// Max absolute per-net probability deviation of the independence
    /// assumption from this run's backend (present for any
    /// non-independent backend; `None` under `indep`). Under `bdd` this
    /// is the exact error; under `monte` it additionally carries the
    /// estimator's sampling noise (≈ `1/√steps` per net), so small
    /// values are indistinguishable from zero.
    pub independence_error: Option<f64>,
    /// Regions of the cone partition the `part` backend evaluated
    /// (`None` for every other backend).
    pub partition_regions: Option<usize>,
    /// The `part` backend's cut-width budget — external inputs per
    /// region (`None` for every other backend).
    pub max_cut_width: Option<usize>,
    /// The `part` backend's *structural* error bound: the fraction of
    /// gate-driven nets not provably exact under the cut, i.e. an upper
    /// bound on how much of the circuit can deviate from full-BDD
    /// statistics at all. `0.0` certifies the statistics equal full-BDD
    /// up to rounding. This bounds coverage, not magnitude — measured
    /// |ΔP| magnitudes live in the equivalence suite and EXPERIMENTS.
    pub partition_error_bound: Option<f64>,
    /// Gates whose configuration changed.
    pub changed_gates: usize,
    /// Optimizer traversals of the fixed-point loop (`None` for the
    /// classic single-pass flow).
    pub fixpoint_iters: Option<usize>,
    /// Dirty-cone statistics re-propagations this run performed
    /// (fixed-point refreshes, or the single post-optimization
    /// freshness check of exact-backend single-pass flows).
    pub repropagations: usize,
    /// `|stale − fresh|` final model power (W): the measured error of
    /// reporting the optimized circuit under pre-optimization
    /// statistics. Present whenever a freshness check ran; ≈0 for the
    /// paper's config-only moves (the §4.2 lemma, verified per run).
    pub stale_power_discrepancy_w: Option<f64>,
    /// Model-power outcome.
    pub power: PowerReport,
    /// Static-timing outcome.
    pub delay: DelayReport,
    /// Simulation outcome, when simulation ran.
    pub sim: Option<SimSummary>,
    /// Per-gate rows, when requested.
    pub per_gate: Option<Vec<GateReport>>,
    /// Engine-health self-profile (peak live nodes, cache hit rate,
    /// region utilization).
    pub perf: PerfReport,
    /// Wall-clock per stage.
    pub timings: StageTimings,
}

impl FlowReport {
    /// Serializes the report as one JSON object on a single line.
    ///
    /// The schema (field names, nesting, units) is pinned by the golden
    /// test in `tests/report_schema.rs`; downstream consumers can rely
    /// on it.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!("\"circuit\":{},", json_string(&self.circuit)));
        out.push_str(&format!("\"scenario\":{},", json_string(&self.scenario)));
        out.push_str(&format!("\"gates\":{},", self.gates));
        out.push_str(&format!("\"inputs\":{},", self.inputs));
        out.push_str(&format!("\"outputs\":{},", self.outputs));
        out.push_str(&format!("\"depth\":{},", self.depth));
        out.push_str(&format!("\"objective\":{},", json_string(&self.objective)));
        out.push_str(&format!(
            "\"delay_bound\":{},",
            json_string(&self.delay_bound)
        ));
        out.push_str(&format!("\"prob_mode\":{},", json_string(&self.prob_mode)));
        out.push_str(&format!("\"degraded\":{},", self.degraded));
        out.push_str(&format!(
            "\"degrade_reason\":{},",
            json_opt_string(self.degrade_reason.as_deref())
        ));
        out.push_str(&format!(
            "\"degrade_rung\":{},",
            json_opt_string(self.degrade_rung.as_deref())
        ));
        out.push_str("\"degrade_events\":[");
        for (i, e) in self.degrade_events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rung\":{},\"phase\":{},\"elapsed_ms\":{}}}",
                json_string(&e.rung),
                json_string(&e.phase),
                json_f64(e.elapsed_ms),
            ));
        }
        out.push_str("],");
        out.push_str(&format!(
            "\"independence_error\":{},",
            json_opt_f64(self.independence_error)
        ));
        match self.partition_regions {
            Some(n) => out.push_str(&format!("\"partition_regions\":{n},")),
            None => out.push_str("\"partition_regions\":null,"),
        }
        match self.max_cut_width {
            Some(n) => out.push_str(&format!("\"max_cut_width\":{n},")),
            None => out.push_str("\"max_cut_width\":null,"),
        }
        out.push_str(&format!(
            "\"partition_error_bound\":{},",
            json_opt_f64(self.partition_error_bound)
        ));
        out.push_str(&format!("\"changed_gates\":{},", self.changed_gates));
        match self.fixpoint_iters {
            Some(n) => out.push_str(&format!("\"fixpoint_iters\":{n},")),
            None => out.push_str("\"fixpoint_iters\":null,"),
        }
        out.push_str(&format!("\"repropagations\":{},", self.repropagations));
        out.push_str(&format!(
            "\"stale_power_discrepancy_w\":{},",
            json_opt_f64(self.stale_power_discrepancy_w)
        ));
        out.push_str(&format!(
            "\"power\":{{\"model_before_w\":{},\"model_after_w\":{},\"reduction_percent\":{},\
             \"model_best_w\":{},\"model_worst_w\":{},\"headroom_percent\":{}}},",
            json_f64(self.power.model_before_w),
            json_f64(self.power.model_after_w),
            json_f64(self.power.reduction_percent),
            json_opt_f64(self.power.model_best_w),
            json_opt_f64(self.power.model_worst_w),
            json_opt_f64(self.power.headroom_percent),
        ));
        out.push_str(&format!(
            "\"delay\":{{\"critical_path_before_s\":{},\"critical_path_after_s\":{},\
             \"increase_percent\":{}}},",
            json_f64(self.delay.critical_path_before_s),
            json_f64(self.delay.critical_path_after_s),
            json_f64(self.delay.increase_percent),
        ));
        match &self.sim {
            Some(sim) => out.push_str(&format!(
                "\"sim\":{{\"duration_s\":{},\"warmup_s\":{},\"seed\":{},\"baseline_w\":{},\
                 \"optimized_w\":{},\"best_w\":{},\"worst_w\":{},\"reduction_percent\":{}}},",
                json_f64(sim.duration_s),
                json_f64(sim.warmup_s),
                sim.seed,
                json_opt_f64(sim.baseline_w),
                json_f64(sim.optimized_w),
                json_opt_f64(sim.best_w),
                json_opt_f64(sim.worst_w),
                json_opt_f64(sim.reduction_percent),
            )),
            None => out.push_str("\"sim\":null,"),
        }
        match &self.per_gate {
            Some(rows) => {
                out.push_str("\"per_gate\":[");
                for (i, r) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"gate\":{},\"cell\":{},\"config_before\":{},\"config_after\":{},\
                         \"power_w\":{}}}",
                        json_string(&r.gate),
                        json_string(&r.cell),
                        r.config_before,
                        r.config_after,
                        json_f64(r.power_w),
                    ));
                }
                out.push_str("],");
            }
            None => out.push_str("\"per_gate\":null,"),
        }
        match self.perf.peak_live_nodes {
            Some(n) => out.push_str(&format!("\"perf\":{{\"peak_live_nodes\":{n},")),
            None => out.push_str("\"perf\":{\"peak_live_nodes\":null,"),
        }
        out.push_str(&format!(
            "\"cache_hit_rate\":{},\"region_utilization\":{}}},",
            json_opt_f64(self.perf.cache_hit_rate),
            json_opt_f64(self.perf.region_utilization),
        ));
        out.push_str(&format!(
            "\"timings\":{{\"load_s\":{},\"stats_s\":{},\"optimize_s\":{},\"timing_s\":{},\
             \"sim_s\":{},\"write_s\":{},\"total_s\":{}}}",
            json_f64(self.timings.load_s),
            json_f64(self.timings.stats_s),
            json_f64(self.timings.optimize_s),
            json_f64(self.timings.timing_s),
            json_f64(self.timings.sim_s),
            json_f64(self.timings.write_s),
            json_f64(self.timings.total_s),
        ));
        out.push('}');
        out
    }

    /// The CSV header matching [`FlowReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "circuit,scenario,gates,inputs,outputs,depth,objective,delay_bound,prob_mode,\
         degraded,degrade_reason,degrade_rung,degrade_events,\
         independence_error,partition_regions,max_cut_width,partition_error_bound,\
         changed_gates,\
         fixpoint_iters,repropagations,stale_power_discrepancy_w,\
         model_before_w,model_after_w,reduction_percent,model_best_w,model_worst_w,\
         headroom_percent,critical_path_before_s,critical_path_after_s,delay_increase_percent,\
         sim_duration_s,sim_baseline_w,sim_optimized_w,sim_best_w,sim_worst_w,\
         sim_reduction_percent,peak_live_nodes,cache_hit_rate,region_utilization,\
         load_s,stats_s,optimize_s,timing_s,sim_s,write_s,total_s"
    }

    /// Serializes the report as one CSV row (per-gate rows are JSON-only).
    pub fn to_csv_row(&self) -> String {
        let opt = |v: Option<f64>| v.map(|v| format!("{v}")).unwrap_or_default();
        let sim = self.sim.as_ref();
        [
            csv_field(&self.circuit),
            csv_field(&self.scenario),
            self.gates.to_string(),
            self.inputs.to_string(),
            self.outputs.to_string(),
            self.depth.to_string(),
            csv_field(&self.objective),
            csv_field(&self.delay_bound),
            csv_field(&self.prob_mode),
            self.degraded.to_string(),
            self.degrade_reason
                .as_deref()
                .map(csv_field)
                .unwrap_or_default(),
            self.degrade_rung
                .as_deref()
                .map(csv_field)
                .unwrap_or_default(),
            // The full event array is JSON-only; CSV carries the count.
            self.degrade_events.len().to_string(),
            opt(self.independence_error),
            self.partition_regions
                .map(|n| n.to_string())
                .unwrap_or_default(),
            self.max_cut_width
                .map(|n| n.to_string())
                .unwrap_or_default(),
            opt(self.partition_error_bound),
            self.changed_gates.to_string(),
            self.fixpoint_iters
                .map(|n| n.to_string())
                .unwrap_or_default(),
            self.repropagations.to_string(),
            opt(self.stale_power_discrepancy_w),
            format!("{}", self.power.model_before_w),
            format!("{}", self.power.model_after_w),
            format!("{}", self.power.reduction_percent),
            opt(self.power.model_best_w),
            opt(self.power.model_worst_w),
            opt(self.power.headroom_percent),
            format!("{}", self.delay.critical_path_before_s),
            format!("{}", self.delay.critical_path_after_s),
            format!("{}", self.delay.increase_percent),
            opt(sim.map(|s| s.duration_s)),
            opt(sim.and_then(|s| s.baseline_w)),
            opt(sim.map(|s| s.optimized_w)),
            opt(sim.and_then(|s| s.best_w)),
            opt(sim.and_then(|s| s.worst_w)),
            opt(sim.and_then(|s| s.reduction_percent)),
            self.perf
                .peak_live_nodes
                .map(|n| n.to_string())
                .unwrap_or_default(),
            opt(self.perf.cache_hit_rate),
            opt(self.perf.region_utilization),
            format!("{}", self.timings.load_s),
            format!("{}", self.timings.stats_s),
            format!("{}", self.timings.optimize_s),
            format!("{}", self.timings.timing_s),
            format!("{}", self.timings.sim_s),
            format!("{}", self.timings.write_s),
            format!("{}", self.timings.total_s),
        ]
        .join(",")
    }
}

/// Quotes a CSV field only when it needs quoting.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comma_report() -> FlowReport {
        FlowReport {
            circuit: "c,17".into(),
            scenario: "A#1".into(),
            gates: 6,
            inputs: 5,
            outputs: 2,
            depth: 3,
            objective: "min".into(),
            delay_bound: "none".into(),
            prob_mode: "indep".into(),
            degraded: false,
            degrade_reason: None,
            degrade_rung: None,
            degrade_events: Vec::new(),
            independence_error: None,
            partition_regions: None,
            max_cut_width: None,
            partition_error_bound: None,
            changed_gates: 2,
            fixpoint_iters: None,
            repropagations: 0,
            stale_power_discrepancy_w: None,
            power: PowerReport {
                model_before_w: 1.0e-6,
                model_after_w: 9.0e-7,
                reduction_percent: 10.0,
                model_best_w: None,
                model_worst_w: None,
                headroom_percent: None,
            },
            delay: DelayReport {
                critical_path_before_s: 1.0e-9,
                critical_path_after_s: 1.1e-9,
                increase_percent: 10.0,
            },
            sim: None,
            per_gate: None,
            perf: PerfReport::default(),
            timings: StageTimings::default(),
        }
    }

    #[test]
    fn csv_header_and_row_have_same_arity() {
        let report = comma_report();
        let header_fields = FlowReport::csv_header().split(',').count();
        let row_fields = report.to_csv_row().split(',').count();
        // The quoted "c,17" field adds one raw comma.
        assert_eq!(header_fields + 1, row_fields);
        assert!(report.to_csv_row().starts_with("\"c,17\""));
    }

    /// Regression: `objective`, `delay_bound` and `prob_mode` used to be
    /// emitted raw, so a comma-bearing value would shift every later
    /// column. All string fields must go through the quoting path.
    #[test]
    fn every_string_field_is_csv_quoted() {
        let mut report = comma_report();
        report.scenario = "A#1,B@2e7".into();
        report.objective = "min,imize".into();
        report.delay_bound = "none,really".into();
        report.prob_mode = "bdd,exact".into();
        report.degrade_reason = Some("bdd interrupted (deadline), sadly".into());
        let row = report.to_csv_row();
        for quoted in [
            "\"c,17\"",
            "\"A#1,B@2e7\"",
            "\"min,imize\"",
            "\"none,really\"",
            "\"bdd,exact\"",
            "\"bdd interrupted (deadline), sadly\"",
        ] {
            assert!(row.contains(quoted), "missing {quoted} in {row}");
        }
        // Quoted, the six embedded commas cancel out: arity still holds.
        let header_fields = FlowReport::csv_header().split(',').count();
        assert_eq!(header_fields + 6, row.split(',').count());
    }
}
