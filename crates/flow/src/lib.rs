//! # tr-flow — the end-to-end pipeline
//!
//! The paper's technique is a *flow*: map a benchmark onto the Table 2
//! library, propagate input statistics, reorder transistors, re-time,
//! validate with the switch-level simulator. This crate is that flow as
//! a first-class object, shared by the `tr-opt` CLI, the examples and
//! the `tr-bench` experiment binaries:
//!
//! * [`Error`] — one typed error for the whole workspace (`From` impls
//!   for every parser/validator error, `source()` chaining), replacing
//!   the ad-hoc `Result<_, String>` plumbing;
//! * [`Flow`] — a declarative builder (file-or-circuit source with
//!   format auto-detection, mapper options, scenario, objective, delay
//!   bound, threads, optional simulation/VCD/netlist output) whose
//!   [`Flow::run`] yields a structured [`FlowReport`], serializable to
//!   JSON (schema pinned by a golden test) and CSV;
//! * [`BatchRunner`] — one `Flow` template stamped over many circuits ×
//!   a scenario matrix on a work-stealing thread pool, reusing per-
//!   thread scratch arenas and streaming one report per (circuit,
//!   scenario) as it completes; every cell is panic-fenced, so one
//!   crashing cell is a reported outcome, not a lost grid. Surfaced on
//!   the CLI as `tr-opt batch`;
//! * [`RunBudget`] + [`CancelToken`] — deadlines, BDD node budgets and
//!   cooperative cancellation for any run, with a degradation ladder
//!   ([`Flow::degrade`]) that completes budget-blown runs under cheaper
//!   backends and records how in the report (see [`govern`]).
//!
//! ```
//! use tr_flow::{Flow, FlowEnv, SimOptions};
//! use tr_netlist::generators;
//! use tr_power::scenario::Scenario;
//!
//! let env = FlowEnv::new();
//! let adder = generators::ripple_carry_adder(4, &env.library);
//! let report = Flow::from_circuit(adder)
//!     .scenario(Scenario::a(), 42)
//!     .simulate(SimOptions::quick(7))
//!     .run(&env)
//!     .unwrap();
//! assert!(report.sim.as_ref().unwrap().optimized_w > 0.0);
//! println!("{}", report.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod env;
mod error;
pub mod faultpoint;
mod flow;
pub mod govern;
pub mod json;
mod report;
mod source;

pub use batch::{BatchJob, BatchResult, BatchRunner, ScenarioSpec};
pub use env::FlowEnv;
pub use error::Error;
pub use flow::{
    max_probability_deviation, parse_prob_mode, sim_duration, DelayBound, DurationPolicy, Flow,
    OrderHeuristic, SimOptions, StatsSnapshot, StatsStage,
};
pub use govern::{CancelToken, Governor, Interrupted, RunBudget, TripReason};
pub use report::{
    DegradeEvent, DelayReport, FlowReport, GateReport, PerfReport, PowerReport, SimSummary,
    StageTimings,
};
pub use source::{load_path, parse_netlist, NetlistFormat, Source};
pub use tr_power::{PropagationError, PropagationMode};
