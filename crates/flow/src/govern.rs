//! Run governance: resource budgets for one pipeline run.
//!
//! A [`RunBudget`] bounds how much a [`Flow`](crate::Flow) run may cost —
//! wall-clock deadline, BDD live-node budget, fixed-point iteration cap —
//! and a [`CancelToken`] lets another thread abort it cooperatively. The
//! low-level machinery (the [`Governor`] every long-running loop checks,
//! the typed [`Interrupted`] trip report) lives in
//! [`tr_boolean::govern`] and is re-exported here so flow callers need
//! only this module.
//!
//! What happens when a budget trips depends on
//! [`Flow::degrade`](crate::Flow::degrade):
//!
//! * **degrade on** (default): the run *completes anyway*, walking the
//!   degradation ladder — a blown BDD node budget retries once under the
//!   information-measure variable order, then falls back to the
//!   independent backend; a blown deadline finishes the remaining stages
//!   ungoverned. The report records `degraded`, the reason and the
//!   ladder rung reached.
//! * **degrade off**: the trip surfaces as a typed error
//!   ([`Error::Interrupted`](crate::Error::Interrupted) or the BDD
//!   node-limit error).
//!
//! Explicit cancellation through a [`CancelToken`] is always a real
//! abort, never a degradation: the caller asked the run to stop.

use std::time::Duration;

pub use tr_boolean::govern::{CancelToken, Governor, Interrupted, TripReason};

/// Resource bounds for one pipeline run (all unbounded by default).
///
/// ```
/// use tr_flow::RunBudget;
///
/// let budget = RunBudget::default().deadline_ms(5_000).bdd_nodes(1 << 16);
/// assert!(!budget.is_unbounded());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock deadline for the run. Enforced cooperatively by every
    /// governed loop (BDD construction, statistics walks, the optimizer,
    /// the fixed-point loop, the simulator's event loop, Monte Carlo
    /// steps), so the overshoot is bounded by one check interval.
    pub deadline: Option<Duration>,
    /// Live-node budget for the exact-BDD backend (the engine's default
    /// when `None`); the first rung of the degradation ladder exists to
    /// recover from blowing it.
    pub bdd_node_budget: Option<usize>,
    /// Cap on optimizer traversals of the fixed-point loop (the loop's
    /// own default when `None`). Reaching it is convergence-by-fiat, not
    /// an error, exactly as `tr_reorder::FixpointOptions::max_iterations`.
    pub max_fixpoint_iters: Option<usize>,
}

impl RunBudget {
    /// No bounds at all (same as `Default`).
    pub fn unbounded() -> Self {
        RunBudget::default()
    }

    /// Whether every bound is absent.
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none()
            && self.bdd_node_budget.is_none()
            && self.max_fixpoint_iters.is_none()
    }

    /// Sets the wall-clock deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Sets the exact-BDD live-node budget.
    pub fn bdd_nodes(mut self, nodes: usize) -> Self {
        self.bdd_node_budget = Some(nodes);
        self
    }

    /// Sets the fixed-point iteration cap.
    pub fn fixpoint_iters(mut self, iters: usize) -> Self {
        self.max_fixpoint_iters = Some(iters);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_builders_compose() {
        assert!(RunBudget::unbounded().is_unbounded());
        let b = RunBudget::default()
            .deadline_ms(250)
            .bdd_nodes(4096)
            .fixpoint_iters(3);
        assert_eq!(b.deadline, Some(Duration::from_millis(250)));
        assert_eq!(b.bdd_node_budget, Some(4096));
        assert_eq!(b.max_fixpoint_iters, Some(3));
        assert!(!b.is_unbounded());
        assert!(!RunBudget::default().bdd_nodes(1).is_unbounded());
    }
}
