//! Minimal hand-rolled JSON emission.
//!
//! The build environment has no crates.io access, so there is no serde;
//! these two helpers (string escaping per RFC 8259, floats via Rust's
//! shortest round-trip formatting, non-finite → `null`) are the entire
//! serializer, shared by [`FlowReport`](crate::FlowReport) and the
//! `tr-bench` artifact writers.

/// Escapes and quotes a string for JSON.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`null` for NaN/±∞, which JSON
/// cannot represent).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Formats an `Option<f64>` (`None` → `null`).
pub fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    }
}

/// Formats an optional string (`None` → `null`).
pub fn json_opt_string(v: Option<&str>) -> String {
    match v {
        Some(s) => json_string(s),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_opt_f64(None), "null");
        assert_eq!(json_opt_f64(Some(2.0)), "2");
        assert_eq!(json_opt_string(None), "null");
        assert_eq!(json_opt_string(Some("a\"b")), "\"a\\\"b\"");
    }
}
