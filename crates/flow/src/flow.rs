//! The typed pipeline builder: declare *what* to run, then [`Flow::run`]
//! executes parse → map → propagate → reorder → re-time → (optionally)
//! simulate → (optionally) write, and returns a structured
//! [`FlowReport`].

use std::path::PathBuf;
use std::time::Instant;

use crate::env::FlowEnv;
use crate::error::Error;
use crate::faultpoint::{self, Fault};
use crate::govern::{CancelToken, Governor, RunBudget, TripReason};
use crate::report::{
    DegradeEvent, DelayReport, FlowReport, GateReport, PerfReport, PowerReport, SimSummary,
    StageTimings,
};
use crate::source::Source;
use tr_bdd::BddError;
use tr_boolean::SignalStats;
use tr_netlist::map::MapOptions;
use tr_netlist::{format, Circuit, CompiledCircuit, GateId};
use tr_power::scenario::Scenario;
use tr_power::{
    circuit_power, propagate, IncrementalPropagator, PropagationError, PropagationMode,
    PropagatorOptions, Scratch,
};
use tr_reorder::{
    optimize_delay_bounded_with_net_stats, optimize_governed_with_net_stats,
    optimize_parallel_governed_with_net_stats, optimize_sharded_governed_with_net_stats,
    optimize_slack_aware_with_net_stats, optimize_to_fixpoint_governed, FixpointOptions, Objective,
    OptimizeResult,
};
use tr_sim::{simulate_governed, simulate_traced, vcd, InputDrive, SimConfig};
use tr_timing::critical_path_delay;

/// Delay-bounding mode of the optimization stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayBound {
    /// Power only; the critical path may grow (paper Table 3).
    #[default]
    Unbounded,
    /// No gate may get slower on any pin (paper §6, local condition).
    Local,
    /// The critical path may not grow; off-critical gates spend their
    /// slack (paper §6, global condition).
    Slack,
}

impl DelayBound {
    /// The CLI/report spelling (`none`, `local`, `slack`).
    pub fn as_str(&self) -> &'static str {
        match self {
            DelayBound::Unbounded => "none",
            DelayBound::Local => "local",
            DelayBound::Slack => "slack",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Result<Self, Error> {
        match s {
            "none" => Ok(DelayBound::Unbounded),
            "local" => Ok(DelayBound::Local),
            "slack" => Ok(DelayBound::Slack),
            other => Err(Error::Usage(format!("bad --delay-bound `{other}`"))),
        }
    }
}

/// Max absolute per-net probability deviation between two net-statistics
/// vectors — the `independence_error` metric recorded in
/// [`FlowReport`] and printed by `tr-opt analyze`.
///
/// # Panics
///
/// Panics if the vectors differ in length (they must describe the same
/// nets).
pub fn max_probability_deviation(a: &[SignalStats], b: &[SignalStats]) -> f64 {
    assert_eq!(a.len(), b.len(), "statistics must cover the same nets");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.probability() - y.probability()).abs())
        .fold(0.0, f64::max)
}

/// Parses the CLI spelling of a probability backend (`indep`, `bdd`,
/// `part`, `monte`); `seed` seeds the Monte Carlo backend. `part`
/// returns [`PropagationMode::partitioned`] with its default budgets —
/// callers with `--region-nodes`/`--cut-width` overrides patch the
/// returned variant's fields.
///
/// # Errors
///
/// Returns [`Error::Usage`] on an unknown spelling.
pub fn parse_prob_mode(s: &str, seed: u64) -> Result<PropagationMode, Error> {
    match s {
        "indep" => Ok(PropagationMode::Independent),
        "bdd" => Ok(PropagationMode::ExactBdd),
        "part" => Ok(PropagationMode::partitioned()),
        "monte" => Ok(PropagationMode::monte(seed)),
        other => Err(Error::Usage(format!(
            "bad --prob `{other}` (expected indep, bdd, part or monte)"
        ))),
    }
}

/// Initial BDD variable-order heuristic of the exact backend (ignored
/// by the other backends, whose ordering is internal). The degradation
/// ladder may still retry a blown build under the information-measure
/// order regardless of this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderHeuristic {
    /// The backend's default fanin-DFS structural order.
    #[default]
    Structural,
    /// [`tr_bdd::order::info_measure`] — high-entropy inputs driving
    /// large fanout cones get the top levels. Statistics-dependent, so
    /// two scenarios may settle different orders for the same netlist.
    InfoMeasure,
}

impl OrderHeuristic {
    /// The CLI/report spelling (`struct`, `info`).
    pub fn as_str(&self) -> &'static str {
        match self {
            OrderHeuristic::Structural => "struct",
            OrderHeuristic::InfoMeasure => "info",
        }
    }

    /// Parses the CLI spelling.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] on an unknown spelling.
    pub fn parse(s: &str) -> Result<Self, Error> {
        match s {
            "struct" => Ok(OrderHeuristic::Structural),
            "info" => Ok(OrderHeuristic::InfoMeasure),
            other => Err(Error::Usage(format!(
                "bad --order `{other}` (expected struct or info)"
            ))),
        }
    }
}

/// How long to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DurationPolicy {
    /// Long enough for the busiest input to toggle ~`target_toggles`
    /// times, clamped to `[1 µs, 10 ms]`.
    Auto {
        /// Toggle budget for the busiest input.
        target_toggles: f64,
    },
    /// Exactly this many seconds.
    Fixed(f64),
}

/// Switch-level validation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Simulated time span.
    pub duration: DurationPolicy,
    /// Fraction of the duration discarded as warm-up.
    pub warmup_frac: f64,
    /// Waveform seed.
    pub seed: u64,
    /// Also simulate the circuit as loaded (for before/after
    /// comparisons).
    pub baseline: bool,
}

impl SimOptions {
    /// Quick validation: ~400 toggles of the busiest input, 10 % warm-up.
    pub fn quick(seed: u64) -> Self {
        SimOptions {
            duration: DurationPolicy::Auto {
                target_toggles: 400.0,
            },
            warmup_frac: 0.1,
            seed,
            baseline: false,
        }
    }

    /// Thorough validation: ~2000 toggles, 10 % warm-up.
    pub fn thorough(seed: u64) -> Self {
        SimOptions {
            duration: DurationPolicy::Auto {
                target_toggles: 2000.0,
            },
            warmup_frac: 0.1,
            seed,
            baseline: false,
        }
    }

    /// Also simulate the unoptimized circuit.
    pub fn with_baseline(mut self) -> Self {
        self.baseline = true;
        self
    }
}

/// Picks a simulation span long enough for the busiest input to toggle
/// about `target_toggles` times, bounded to keep whole-suite runs
/// laptop-scale.
pub fn sim_duration(stats: &[SignalStats], target_toggles: f64) -> f64 {
    let max_d = stats
        .iter()
        .map(SignalStats::density)
        .fold(0.0f64, f64::max)
        .max(1.0);
    (target_toggles / max_d).clamp(1.0e-6, 1.0e-2)
}

/// Degradation bookkeeping for one run: whether a budget tripped, the
/// first failure's message, and the deepest ladder rung reached —
/// exactly what [`FlowReport`] records as `degraded`/`degrade_reason`/
/// `degrade_rung`.
#[derive(Debug)]
struct LadderState {
    degraded: bool,
    reason: Option<String>,
    rung: Option<&'static str>,
    /// Every rung taken in order, surfaced as
    /// [`FlowReport::degrade_events`].
    events: Vec<DegradeEvent>,
    /// Pipeline start, the zero of each event's `elapsed_ms`.
    t0: Instant,
}

impl LadderState {
    fn new() -> Self {
        LadderState {
            degraded: false,
            reason: None,
            rung: None,
            events: Vec::new(),
            t0: Instant::now(),
        }
    }

    /// Records one ladder step in `phase` (`stats`, `optimize`, `sim`
    /// or `boundary`). The *first* failure's message is kept (later
    /// steps are consequences of it); the rung is overwritten so the
    /// report shows the deepest one reached; the full history
    /// accumulates in `events`.
    fn record(&mut self, rung: &'static str, phase: &'static str, reason: &dyn std::fmt::Display) {
        self.degraded = true;
        if self.reason.is_none() {
            self.reason = Some(reason.to_string());
        }
        self.rung = Some(rung);
        self.events.push(DegradeEvent {
            rung: rung.to_string(),
            phase: phase.to_string(),
            elapsed_ms: self.t0.elapsed().as_secs_f64() * 1.0e3,
        });
        tr_trace::instant!("flow.degrade", rung = rung, phase = phase);
    }
}

/// The output of stage 2 ([`Flow::prepare_stats`]): input statistics
/// resolved, per-net statistics computed, and the backend propagator
/// live — everything [`Flow::run_staged`] needs to optimize and finish
/// the run. Holds the run's governor, so the deadline clock spans both
/// halves exactly as it does for the unsplit pipeline.
#[derive(Debug)]
pub struct StatsStage {
    run_governor: Option<Governor>,
    stats: Vec<SignalStats>,
    scenario_label: String,
    propagator: IncrementalPropagator,
    prob: PropagationMode,
    net_stats: Vec<SignalStats>,
    independence_error: Option<f64>,
    ladder: LadderState,
    stats_s: f64,
}

impl StatsStage {
    /// Whether the statistics stage walked the degradation ladder.
    pub fn degraded(&self) -> bool {
        self.ladder.degraded
    }

    /// The backend that actually produced the statistics (post-ladder).
    pub fn prob_mode(&self) -> PropagationMode {
        self.prob
    }

    /// The computed per-net statistics.
    pub fn net_stats(&self) -> &[SignalStats] {
        &self.net_stats
    }

    /// Seconds spent computing the statistics.
    pub fn stats_seconds(&self) -> f64 {
        self.stats_s
    }

    /// Max |ΔP| against the independence assumption (`None` for the
    /// independent backend, which has nothing to compare against).
    pub fn independence_error(&self) -> Option<f64> {
        self.independence_error
    }

    /// Captures the staged artifacts for a warm cache: a clone of the
    /// propagator (BDD engine and all) detached from this run's
    /// governor, plus the resolved input statistics it answers for.
    /// Must be taken *before* [`Flow::run_staged`] consumes the stage —
    /// optimization refreshes mutate the propagator's counters.
    ///
    /// Returns `None` when the stage degraded: a degraded build may be
    /// deadline- (i.e. timing-) dependent, so replaying it as if
    /// deterministic would be wrong, and caching a fallback artifact
    /// would pin the degradation past the transient that caused it.
    pub fn snapshot(&self) -> Option<StatsSnapshot> {
        if self.ladder.degraded {
            return None;
        }
        let mut propagator = self.propagator.clone();
        propagator.set_governor(None);
        Some(StatsSnapshot {
            stats: self.stats.clone(),
            scenario_label: self.scenario_label.clone(),
            propagator,
            prob: self.prob,
            independence_error: self.independence_error,
        })
    }
}

/// A cacheable clone of a [`StatsStage`]'s artifacts — the value a
/// content-addressed warm cache retains per (netlist, scenario, backend,
/// order) key. [`Flow::rehydrate`] turns it back into a runnable stage
/// without re-parsing, re-compiling, or re-building BDDs.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    stats: Vec<SignalStats>,
    scenario_label: String,
    propagator: IncrementalPropagator,
    prob: PropagationMode,
    independence_error: Option<f64>,
}

impl StatsSnapshot {
    /// The backend the snapshot was prepared under.
    pub fn prob_mode(&self) -> PropagationMode {
        self.prob
    }

    /// Live BDD nodes retained by the snapshot's engine (0 for the
    /// engine-less backends) — what a cache's node budget accounts.
    pub fn live_bdd_nodes(&self) -> usize {
        self.propagator.engine_stats().map_or(0, |s| s.live)
    }

    /// Rough heap footprint of the snapshot in bytes (statistics
    /// vectors plus ~16 bytes per live BDD node) — what a cache's byte
    /// budget accounts. An estimate, not an allocator measurement.
    pub fn approx_heap_bytes(&self) -> usize {
        let stats_bytes = (self.stats.len() + 2 * self.propagator.net_stats().len())
            * std::mem::size_of::<SignalStats>();
        stats_bytes + 16 * self.live_bdd_nodes()
    }
}

/// Disables the tracer when a traced [`Flow::run`] unwinds through an
/// error (the success path disables before writing the trace file).
struct TraceOff;

impl Drop for TraceOff {
    fn drop(&mut self) {
        tr_trace::disable();
    }
}

/// The failure an armed `NodeLimit` faultpoint stands in for.
fn injected_node_limit(limit: Option<usize>) -> PropagationError {
    PropagationError::Bdd(BddError::NodeLimit {
        limit: limit.unwrap_or(0),
    })
}

/// Where the input statistics come from.
#[derive(Debug, Clone)]
enum StatsSpec {
    /// Draw from one of the paper's scenarios with this seed.
    Scenario { scenario: Scenario, seed: u64 },
    /// Caller-supplied, one entry per primary input.
    Explicit(Vec<SignalStats>),
}

/// A declarative, reusable description of one pipeline run.
///
/// ```
/// use tr_flow::{Flow, FlowEnv};
/// use tr_netlist::generators;
/// use tr_power::scenario::Scenario;
///
/// let env = FlowEnv::new();
/// let adder = generators::ripple_carry_adder(4, &env.library);
/// let report = Flow::from_circuit(adder)
///     .scenario(Scenario::a(), 42)
///     .run(&env)
///     .unwrap();
/// assert!(report.power.headroom_percent.unwrap() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Flow {
    source: Source,
    map_options: MapOptions,
    stats: StatsSpec,
    prob: PropagationMode,
    order: OrderHeuristic,
    objective: Objective,
    delay_bound: DelayBound,
    fixpoint: bool,
    threads: usize,
    headroom: bool,
    sim: Option<SimOptions>,
    vcd: Option<PathBuf>,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
    per_gate: bool,
    budget: RunBudget,
    cancel: Option<CancelToken>,
    degrade: bool,
}

impl Flow {
    fn new(source: Source) -> Self {
        Flow {
            source,
            map_options: MapOptions::default(),
            stats: StatsSpec::Scenario {
                scenario: Scenario::a(),
                seed: 1,
            },
            prob: PropagationMode::Independent,
            order: OrderHeuristic::Structural,
            objective: Objective::MinimizePower,
            delay_bound: DelayBound::Unbounded,
            fixpoint: false,
            threads: 1,
            headroom: true,
            sim: None,
            vcd: None,
            out: None,
            trace: None,
            per_gate: false,
            budget: RunBudget::default(),
            cancel: None,
            degrade: true,
        }
    }

    /// A flow reading (and format-auto-detecting) a netlist file.
    pub fn open(path: impl Into<PathBuf>) -> Self {
        Flow::new(Source::Path(path.into()))
    }

    /// A flow over an already-mapped circuit.
    pub fn from_circuit(circuit: Circuit) -> Self {
        Flow::new(Source::Circuit(circuit))
    }

    /// A flow over any [`Source`].
    pub fn from_source(source: Source) -> Self {
        Flow::new(source)
    }

    /// Replaces the source, keeping every other setting — for reusing
    /// one configured flow across several netlists.
    pub fn with_source(mut self, source: Source) -> Self {
        self.source = source;
        self
    }

    /// Technology-mapper options for `.bench`/`.blif` sources.
    pub fn map_options(mut self, options: MapOptions) -> Self {
        self.map_options = options;
        self
    }

    /// Draw input statistics from a paper scenario with this seed.
    pub fn scenario(mut self, scenario: Scenario, seed: u64) -> Self {
        self.stats = StatsSpec::Scenario { scenario, seed };
        self
    }

    /// Use explicit input statistics (one per primary input).
    pub fn input_stats(mut self, stats: Vec<SignalStats>) -> Self {
        self.stats = StatsSpec::Explicit(stats);
        self
    }

    /// The probability backend computing per-net statistics (default
    /// [`PropagationMode::Independent`]; [`PropagationMode::ExactBdd`]
    /// handles reconvergent-fanout correlation exactly, and the report
    /// then records the independence error).
    pub fn prob(mut self, mode: PropagationMode) -> Self {
        self.prob = mode;
        self
    }

    /// Initial BDD variable-order heuristic for the exact backend
    /// (default structural fanin-DFS; see [`OrderHeuristic`]).
    pub fn order(mut self, order: OrderHeuristic) -> Self {
        self.order = order;
        self
    }

    /// Optimization objective (default: minimize power).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Delay-bounding mode (default: unbounded).
    pub fn delay_bound(mut self, bound: DelayBound) -> Self {
        self.delay_bound = bound;
        self
    }

    /// Run the optimizer to a statistics fixed point (default off):
    /// propagate → optimize → re-propagate dirty cones → repeat until no
    /// gate changes, per [`tr_reorder::optimize_to_fixpoint`]. The
    /// report then carries the iteration count and the measured
    /// stale-vs-fresh power discrepancy. Only available with
    /// [`DelayBound::Unbounded`].
    pub fn fixpoint(mut self, on: bool) -> Self {
        self.fixpoint = on;
        self
    }

    /// Optimizer worker threads (default 1; >1 uses the parallel
    /// work-queue traversal, identical results).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` (same contract as
    /// [`tr_reorder::optimize_parallel`] and
    /// [`BatchRunner::threads`](crate::BatchRunner::threads)).
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Whether to also run the opposite objective to measure best-vs-
    /// worst headroom (default on; only available unbounded).
    pub fn headroom(mut self, on: bool) -> Self {
        self.headroom = on;
        self
    }

    /// Validate with the switch-level simulator.
    pub fn simulate(mut self, options: SimOptions) -> Self {
        self.sim = Some(options);
        self
    }

    /// Dump a simulation waveform of the optimized circuit (implies
    /// nothing about `simulate`; set both).
    pub fn vcd(mut self, path: impl Into<PathBuf>) -> Self {
        self.vcd = Some(path.into());
        self
    }

    /// Write the optimized netlist in the native `.trnet` format.
    pub fn write_netlist(mut self, path: impl Into<PathBuf>) -> Self {
        self.out = Some(path.into());
        self
    }

    /// Write a Chrome trace-event JSON self-profile of the run
    /// (loadable in Perfetto / `chrome://tracing`): the tracer is
    /// enabled for the duration of [`Flow::run`] and every span the
    /// pipeline and its backends emit — stage spans, BDD builds and
    /// GCs, per-region evaluations, optimizer passes — lands in `path`.
    /// The tracer is process-global, so concurrent traced flows in one
    /// process interleave into whichever file is written last; the
    /// batch runner instead traces at the run level (`tr-opt batch
    /// --trace`), merging every worker into one file. No-op when the
    /// workspace is built with `--no-default-features` (tracing
    /// compiled out).
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Include per-gate power/configuration rows in the report.
    pub fn per_gate(mut self, on: bool) -> Self {
        self.per_gate = on;
        self
    }

    /// Resource bounds for the run (default: unbounded). What a tripped
    /// bound does depends on [`Flow::degrade`].
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cooperative cancellation token: another thread calling
    /// [`CancelToken::cancel`] aborts the run at its next governed check
    /// with [`Error::Interrupted`]. Cancellation is always a real abort,
    /// never a degradation.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether a tripped budget degrades gracefully (default `true`):
    /// the run completes through the degradation ladder — a blown BDD
    /// node budget retries once under the information-measure variable
    /// order (exact backend) or with halved regions (partitioned
    /// backend, up to three halvings), then falls back to the
    /// independent backend; a blown deadline finishes the remaining
    /// stages ungoverned — and the report records `degraded`, the
    /// reason and the rung. With `false` the trip surfaces as a typed
    /// error instead.
    pub fn degrade(mut self, on: bool) -> Self {
        self.degrade = on;
        self
    }

    /// The full governor for budget-enforced stages: deadline plus the
    /// caller's token, `None` when neither bound exists. Created once
    /// per pipeline run and shared by every stage, so the deadline is
    /// wall-clock from the start of the run.
    fn full_governor(&self) -> Option<Governor> {
        if self.cancel.is_none() && self.budget.deadline.is_none() {
            return None;
        }
        Some(match &self.cancel {
            Some(token) => Governor::with_token(token.clone(), self.budget.deadline),
            None => Governor::new(self.budget.deadline),
        })
    }

    /// The governor for stages running *after* a degradation: no
    /// deadline (the run must complete), but explicit cancellation still
    /// aborts.
    fn cancel_governor(&self) -> Option<Governor> {
        self.cancel
            .as_ref()
            .map(|token| Governor::with_token(token.clone(), None))
    }

    /// The configured mapper options (the batch runner's pre-load pass
    /// needs them without consuming the template).
    pub(crate) fn map_options_value(&self) -> &MapOptions {
        &self.map_options
    }

    /// Whether this flow writes `--out`/`--vcd` artifacts (the batch
    /// runner rejects such templates: every cell would overwrite the
    /// same file).
    pub(crate) fn writes_artifacts(&self) -> bool {
        self.out.is_some() || self.vcd.is_some()
    }

    /// The self-profile destination, if any (the batch runner hoists it
    /// to the run level instead of letting every cell clobber one file).
    pub(crate) fn trace_path(&self) -> Option<&PathBuf> {
        self.trace.as_ref()
    }

    /// Runs the pipeline with a private scratch arena.
    pub fn run(&self, env: &FlowEnv) -> Result<FlowReport, Error> {
        self.run_with_scratch(env, &mut Scratch::new())
    }

    /// Runs the pipeline, returning the optimized circuit alongside the
    /// report (for callers that keep transforming it).
    pub fn run_full(&self, env: &FlowEnv) -> Result<(FlowReport, Circuit), Error> {
        self.run_full_with_scratch(env, &mut Scratch::new())
    }

    /// [`Flow::run`] with a caller-supplied scratch arena (reused across
    /// runs by the batch runner's worker threads).
    pub fn run_with_scratch(
        &self,
        env: &FlowEnv,
        scratch: &mut Scratch,
    ) -> Result<FlowReport, Error> {
        self.run_full_with_scratch(env, scratch).map(|(r, _)| r)
    }

    /// [`Flow::run_full`] with a caller-supplied scratch arena.
    pub fn run_full_with_scratch(
        &self,
        env: &FlowEnv,
        scratch: &mut Scratch,
    ) -> Result<(FlowReport, Circuit), Error> {
        // Tracing spans the whole run, including the load stage; the
        // guard keeps a failed run from leaving the process-global
        // tracer enabled.
        let _trace_guard = self.trace.as_ref().map(|_| {
            tr_trace::reset();
            tr_trace::enable();
            tr_trace::set_thread_name("flow-main");
            TraceOff
        });
        // 1. Load: read, parse, technology-map.
        let t = Instant::now();
        let circuit = {
            let _s = tr_trace::span!("flow.load");
            let circuit = self.source.load(&env.library, &self.map_options)?;
            circuit.validate(&env.library)?;
            circuit
        };
        let load_s = t.elapsed().as_secs_f64();
        let result = self.run_pipeline(env, &circuit, self.source.name(), load_s, scratch)?;
        if let Some(path) = &self.trace {
            tr_trace::disable();
            tr_trace::write_chrome_trace(path).map_err(|e| Error::io(path, e))?;
        }
        Ok(result)
    }

    /// Stages 2–7 over an already-loaded circuit. The batch runner calls
    /// this directly so each worker borrows the once-parsed circuit
    /// instead of re-cloning it per scenario cell.
    pub(crate) fn run_pipeline(
        &self,
        env: &FlowEnv,
        circuit: &Circuit,
        name: String,
        load_s: f64,
        scratch: &mut Scratch,
    ) -> Result<(FlowReport, Circuit), Error> {
        let stage = self.prepare_stats(env, circuit)?;
        self.run_staged(env, circuit, name, load_s, stage, scratch)
    }

    /// The configured input statistics resolved against `circuit`, with
    /// their report label.
    fn resolve_input_stats(&self, circuit: &Circuit) -> Result<(Vec<SignalStats>, String), Error> {
        let n_inputs = circuit.primary_inputs().len();
        let (stats, scenario_label) = match &self.stats {
            StatsSpec::Scenario { scenario, seed } => (
                scenario.input_stats(n_inputs, *seed),
                scenario_label(scenario, *seed),
            ),
            StatsSpec::Explicit(stats) => (stats.clone(), "explicit".to_string()),
        };
        if stats.len() != n_inputs {
            return Err(Error::StatsMismatch {
                expected: n_inputs,
                got: stats.len(),
            });
        }
        Ok((stats, scenario_label))
    }

    /// Cheap configuration validation shared by every pipeline entry.
    fn validate_artifacts(&self) -> Result<(), Error> {
        if self.vcd.is_some() && self.sim.is_none() {
            return Err(Error::Usage(
                "a VCD dump needs a simulation: set Flow::simulate alongside Flow::vcd".into(),
            ));
        }
        Ok(())
    }

    /// Stage 2 alone: resolves the input statistics and computes per-net
    /// statistics under the configured backend, returning a
    /// [`StatsStage`] that [`Flow::run_staged`] finishes. Splitting the
    /// pipeline here lets a caller snapshot the expensive artifacts
    /// ([`StatsStage::snapshot`]) before optimization mutates them —
    /// the warm path of a serving cache.
    ///
    /// # Errors
    ///
    /// As [`Flow::run`]: statistics-stage failures (compile errors, a
    /// blown budget with [`Flow::degrade`] off, cancellation).
    pub fn prepare_stats(&self, env: &FlowEnv, circuit: &Circuit) -> Result<StatsStage, Error> {
        self.validate_artifacts()?;
        // Pre-flight: a token cancelled before the run starts aborts it
        // before any work is done.
        if let Some(governor) = self.cancel_governor() {
            governor.check_now("flow")?;
        }
        // One governor for the whole run: every governed stage shares
        // its deadline, token and work counter.
        let run_governor = self.full_governor();

        // 2. Input statistics.
        let t = Instant::now();
        let stats_span = tr_trace::span!(
            "flow.stats",
            gates = circuit.gates().len(),
            mode = self.prob.as_str()
        );
        let (stats, scenario_label) = self.resolve_input_stats(circuit)?;
        // 2b. Per-net statistics under the chosen probability backend,
        // held by an incremental propagator so later stages can
        // re-derive dirty cones instead of rebuilding; exact backends
        // also measure how far the independence assumption was off
        // (max |ΔP| over all nets). Under a budget this is where the
        // degradation ladder lives: `prob` tracks the backend that
        // actually produced the statistics.
        let mut ladder = LadderState::new();
        let (propagator, prob) = self.build_propagator(
            env,
            circuit,
            &stats,
            run_governor.as_ref(),
            true,
            &mut ladder,
        )?;
        let net_stats = propagator.net_stats().to_vec();
        let independence_error = match prob {
            PropagationMode::Independent => None,
            _ => {
                let indep = propagate(circuit, &env.library, &stats);
                Some(max_probability_deviation(&net_stats, &indep))
            }
        };
        drop(stats_span);
        Ok(StatsStage {
            run_governor,
            stats,
            scenario_label,
            propagator,
            prob,
            net_stats,
            independence_error,
            ladder,
            stats_s: t.elapsed().as_secs_f64(),
        })
    }

    /// Reconstitutes a [`StatsStage`] from a cached [`StatsSnapshot`]
    /// without re-running stage 2: the snapshot's propagator is cloned
    /// (so the snapshot stays pristine for the next request) and handed
    /// this flow's governor. Because a clone resumes bit-for-bit where
    /// the cold build stood, [`Flow::run_staged`] then produces a report
    /// identical to a fresh run's apart from wall-clock timings.
    ///
    /// # Errors
    ///
    /// [`Error::Usage`] when this flow's probability backend or resolved
    /// input statistics differ from the ones the snapshot was prepared
    /// under (a warm cache keying on them never hits this), plus
    /// pre-flight cancellation.
    pub fn rehydrate(
        &self,
        env: &FlowEnv,
        circuit: &Circuit,
        snapshot: &StatsSnapshot,
    ) -> Result<StatsStage, Error> {
        let _ = env; // symmetry with prepare_stats; the models live in the snapshot's stats
        self.validate_artifacts()?;
        if self.prob != snapshot.prob {
            return Err(Error::Usage(format!(
                "snapshot was prepared under --prob {}, flow wants {}",
                snapshot.prob, self.prob
            )));
        }
        let (stats, scenario_label) = self.resolve_input_stats(circuit)?;
        if stats != snapshot.stats || scenario_label != snapshot.scenario_label {
            return Err(Error::Usage(
                "snapshot was prepared under different input statistics".into(),
            ));
        }
        if let Some(governor) = self.cancel_governor() {
            governor.check_now("flow")?;
        }
        let run_governor = self.full_governor();
        let _s = tr_trace::span!("flow.rehydrate", gates = circuit.gates().len());
        let mut propagator = snapshot.propagator.clone();
        propagator.set_governor(run_governor.clone());
        let net_stats = propagator.net_stats().to_vec();
        Ok(StatsStage {
            run_governor,
            stats,
            scenario_label,
            propagator,
            prob: snapshot.prob,
            net_stats,
            independence_error: snapshot.independence_error,
            ladder: LadderState::new(),
            stats_s: 0.0,
        })
    }

    /// Stages 3–7 against an already-prepared statistics stage (from
    /// [`Flow::prepare_stats`] or [`Flow::rehydrate`]). The stage's
    /// governor carries over, so a deadline keeps counting from
    /// preparation time.
    ///
    /// # Errors
    ///
    /// As [`Flow::run`].
    pub fn run_staged(
        &self,
        env: &FlowEnv,
        circuit: &Circuit,
        name: String,
        load_s: f64,
        stage: StatsStage,
        scratch: &mut Scratch,
    ) -> Result<(FlowReport, Circuit), Error> {
        self.validate_artifacts()?;
        let StatsStage {
            run_governor,
            stats,
            scenario_label,
            mut propagator,
            mut prob,
            net_stats,
            independence_error,
            mut ladder,
            stats_s,
        } = stage;
        let n_inputs = circuit.primary_inputs().len();
        let t_total = Instant::now();
        let mut timings = StageTimings {
            load_s,
            stats_s,
            ..StageTimings::default()
        };

        // 3. Optimize toward the objective — to a statistics fixed
        // point when requested — plus (unbounded only) the opposite
        // objective for the best-vs-worst headroom of Table 3.
        if self.fixpoint && self.delay_bound != DelayBound::Unbounded {
            return Err(Error::Unsupported(format!(
                "--fixpoint only supports --delay-bound none (got {})",
                self.delay_bound.as_str()
            )));
        }
        let t = Instant::now();
        let optimize_span = tr_trace::span!(
            "flow.optimize",
            gates = circuit.gates().len(),
            fixpoint = self.fixpoint,
            threads = self.threads
        );
        let mut fixpoint_iters = None;
        let mut stale_power_discrepancy_w = None;
        let primary = if self.fixpoint {
            let options = FixpointOptions {
                objective: self.objective,
                threads: self.threads,
                max_iterations: self
                    .budget
                    .max_fixpoint_iters
                    .unwrap_or(FixpointOptions::default().max_iterations),
            };
            let governor = if ladder.degraded {
                self.cancel_governor()
            } else {
                run_governor.clone()
            };
            let rep = match optimize_to_fixpoint_governed(
                circuit,
                &env.library,
                &env.model,
                &mut propagator,
                options,
                governor.as_ref(),
            ) {
                Ok(rep) => rep,
                Err(PropagationError::Interrupted(i))
                    if self.degrade && i.reason != TripReason::Cancelled =>
                {
                    ladder.record("finish-ungoverned", "optimize", &i);
                    // An interrupted loop may leave the propagator's
                    // statistics describing an intermediate circuit;
                    // rebuild it fresh (deadline off) and rerun from the
                    // original circuit.
                    let (rebuilt, rebuilt_mode) = self.build_propagator(
                        env,
                        circuit,
                        &stats,
                        run_governor.as_ref(),
                        false,
                        &mut ladder,
                    )?;
                    propagator = rebuilt;
                    prob = rebuilt_mode;
                    optimize_to_fixpoint_governed(
                        circuit,
                        &env.library,
                        &env.model,
                        &mut propagator,
                        options,
                        self.cancel_governor().as_ref(),
                    )?
                }
                Err(e) => return Err(e.into()),
            };
            fixpoint_iters = Some(rep.iterations);
            stale_power_discrepancy_w = Some(rep.stale_discrepancy_w());
            rep.result
        } else {
            let mut primary = self.optimize_once_degradable(
                env,
                circuit,
                &net_stats,
                self.objective,
                propagator.partition(),
                scratch,
                run_governor.as_ref(),
                &mut ladder,
            )?;
            // Exact backends used to report the optimized circuit's
            // power under pre-optimization statistics — sound for the
            // paper's config-only moves (§4.2) but never checked. Now
            // the dirty cones of the accepted changes are re-propagated
            // and the final number recomputed fresh, recording how far
            // off the stale report would have been.
            if prob != PropagationMode::Independent && primary.changed_gates > 0 {
                let dirty = changed_gate_ids(circuit, &primary.circuit);
                match propagator.refresh(&primary.circuit, &env.library, &dirty) {
                    Ok(_) => {
                        let fresh =
                            circuit_power(&primary.circuit, &env.model, propagator.net_stats())
                                .total;
                        stale_power_discrepancy_w = Some((primary.power_after - fresh).abs());
                        primary.power_after = fresh;
                    }
                    Err(PropagationError::Interrupted(i))
                        if self.degrade && i.reason != TripReason::Cancelled =>
                    {
                        // The freshness check is verification, not
                        // product: skip it rather than fail the run;
                        // `degraded` flags the gap.
                        ladder.record("finish-ungoverned", "optimize", &i);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            primary
        };
        let counterpart = if self.headroom && self.delay_bound == DelayBound::Unbounded {
            let opposite = match self.objective {
                Objective::MinimizePower => Objective::MaximizePower,
                Objective::MaximizePower => Objective::MinimizePower,
            };
            Some(self.optimize_once_degradable(
                env,
                circuit,
                &net_stats,
                opposite,
                propagator.partition(),
                scratch,
                run_governor.as_ref(),
                &mut ladder,
            )?)
        } else {
            None
        };
        drop(optimize_span);
        timings.optimize_s = t.elapsed().as_secs_f64();

        // Stage boundary: a deadline blown during optimization that no
        // amortized in-loop check caught (small circuits do little
        // governed work between checks) is detected here,
        // deterministically.
        self.checkpoint(run_governor.as_ref(), &mut ladder)?;

        let (model_best_w, model_worst_w) = match (&counterpart, self.objective) {
            (Some(c), Objective::MinimizePower) => (Some(primary.power_after), Some(c.power_after)),
            (Some(c), Objective::MaximizePower) => (Some(c.power_after), Some(primary.power_after)),
            (None, _) => (None, None),
        };
        let headroom_percent = match (model_best_w, model_worst_w) {
            (Some(best), Some(worst)) => {
                Some(100.0 * (worst - best) / worst.max(f64::MIN_POSITIVE))
            }
            _ => None,
        };

        // 4. Static timing, before and after.
        let t = Instant::now();
        let timing_span = tr_trace::span!("flow.timing");
        let delay_before = critical_path_delay(circuit, &env.timing);
        let delay_after = critical_path_delay(&primary.circuit, &env.timing);
        drop(timing_span);
        timings.timing_s = t.elapsed().as_secs_f64();

        // 5. Switch-level validation.
        let t = Instant::now();
        let sim_span = tr_trace::span!("flow.sim", enabled = self.sim.is_some());
        let mut vcd_trace = None;
        let sim_summary = match &self.sim {
            Some(opts) => {
                let duration = match opts.duration {
                    DurationPolicy::Auto { target_toggles } => sim_duration(&stats, target_toggles),
                    DurationPolicy::Fixed(d) => d,
                };
                let cfg = SimConfig {
                    duration,
                    warmup: duration * opts.warmup_frac,
                    seed: opts.seed,
                };
                let optimized_w = if self.vcd.is_some() {
                    // The traced run keeps every transition for the VCD
                    // dump; it is explicitly requested, so it runs
                    // ungoverned.
                    let drives: Vec<InputDrive> =
                        stats.iter().map(|s| InputDrive::Stochastic(*s)).collect();
                    let (report, trace) = simulate_traced(
                        &primary.circuit,
                        &env.library,
                        &env.process,
                        &env.timing,
                        &drives,
                        &cfg,
                    );
                    vcd_trace = Some(trace);
                    report.power
                } else {
                    self.simulate_power_degradable(
                        env,
                        &primary.circuit,
                        &stats,
                        &cfg,
                        run_governor.as_ref(),
                        &mut ladder,
                    )?
                };
                let baseline_w = if opts.baseline {
                    Some(self.simulate_power_degradable(
                        env,
                        circuit,
                        &stats,
                        &cfg,
                        run_governor.as_ref(),
                        &mut ladder,
                    )?)
                } else {
                    None
                };
                let counterpart_w = match &counterpart {
                    Some(c) => Some(self.simulate_power_degradable(
                        env,
                        &c.circuit,
                        &stats,
                        &cfg,
                        run_governor.as_ref(),
                        &mut ladder,
                    )?),
                    None => None,
                };
                // With the headroom pass the two sim measurements are
                // best/worst regardless of the primary objective; without
                // it, neither bound was established (a delay-bounded
                // minimize is not the unconstrained best).
                let (best_w, worst_w) = match (counterpart_w, self.objective) {
                    (Some(c), Objective::MinimizePower) => (Some(optimized_w), Some(c)),
                    (Some(c), Objective::MaximizePower) => (Some(c), Some(optimized_w)),
                    (None, _) => (None, None),
                };
                let reduction_percent = match (best_w, worst_w) {
                    (Some(b), Some(w)) => Some(100.0 * (w - b) / w.max(f64::MIN_POSITIVE)),
                    _ => None,
                };
                Some(SimSummary {
                    duration_s: duration,
                    warmup_s: cfg.warmup,
                    seed: opts.seed,
                    baseline_w,
                    optimized_w,
                    best_w,
                    worst_w,
                    reduction_percent,
                })
            }
            None => None,
        };
        drop(sim_span);
        timings.sim_s = t.elapsed().as_secs_f64();

        // 6. Per-gate rows. Net statistics are configuration-independent
        // (the §4.2 monotonicity lemma), so the backend's stats computed
        // on the input circuit apply verbatim to the optimized one.
        let per_gate = self.per_gate.then(|| {
            let power = circuit_power(&primary.circuit, &env.model, &net_stats);
            primary
                .circuit
                .gates()
                .iter()
                .zip(circuit.gates())
                .zip(&power.per_gate)
                .map(|((after, before), gp)| GateReport {
                    gate: primary.circuit.net_name(after.output).to_string(),
                    cell: after.cell.name(),
                    config_before: before.config,
                    config_after: after.config,
                    power_w: gp.total,
                })
                .collect()
        });

        // 7. Artifacts.
        let t = Instant::now();
        let write_span = tr_trace::span!("flow.write");
        if let Some(path) = &self.out {
            std::fs::write(path, format::write(&primary.circuit))
                .map_err(|e| Error::io(path, e))?;
        }
        if let (Some(path), Some(trace)) = (&self.vcd, &vcd_trace) {
            vcd::write_to_file(&primary.circuit, trace, path).map_err(|e| Error::io(path, e))?;
        }
        drop(write_span);
        timings.write_s = t.elapsed().as_secs_f64();
        timings.total_s = load_s + stats_s + t_total.elapsed().as_secs_f64();

        // Partition-backend shape, from the propagator that actually
        // produced the statistics (post-ladder, so a shrink-regions
        // retry reports its shrunk partition).
        let (partition_regions, partition_error_bound) = match propagator.partition_summary() {
            Some((regions, _cut_nets, approx_fraction)) => (Some(regions), Some(approx_fraction)),
            None => (None, None),
        };
        let max_cut_width = match prob {
            PropagationMode::PartitionedBdd { max_cut_width, .. } => Some(max_cut_width),
            _ => None,
        };

        // Engine-health self-profile, one coherent snapshot from the
        // backend that produced the statistics. The incremental
        // propagator walks its region schedule serially, so `part`
        // utilization is 1.0 by the `PartitionReport` convention.
        let engine = propagator.engine_stats();
        let perf = PerfReport {
            peak_live_nodes: engine.map(|s| s.gc.peak_live),
            cache_hit_rate: engine.map(|s| s.caches.hit_rate()),
            region_utilization: partition_regions.map(|_| 1.0),
        };
        if let Some(rate) = perf.cache_hit_rate {
            tr_trace::counter!("flow.cache_hit_rate", rate);
        }

        let report = FlowReport {
            circuit: name,
            scenario: scenario_label,
            gates: circuit.gates().len(),
            inputs: n_inputs,
            outputs: circuit.primary_outputs().len(),
            depth: circuit.logic_depth(),
            objective: match self.objective {
                Objective::MinimizePower => "min".to_string(),
                Objective::MaximizePower => "max".to_string(),
            },
            delay_bound: self.delay_bound.as_str().to_string(),
            prob_mode: prob.as_str().to_string(),
            degraded: ladder.degraded,
            degrade_reason: ladder.reason,
            degrade_rung: ladder.rung.map(str::to_string),
            degrade_events: ladder.events,
            independence_error,
            partition_regions,
            max_cut_width,
            partition_error_bound,
            changed_gates: primary.changed_gates,
            fixpoint_iters,
            repropagations: propagator.repropagations(),
            stale_power_discrepancy_w,
            power: PowerReport {
                model_before_w: primary.power_before,
                model_after_w: primary.power_after,
                reduction_percent: primary.reduction_percent(),
                model_best_w,
                model_worst_w,
                headroom_percent,
            },
            delay: DelayReport {
                critical_path_before_s: delay_before,
                critical_path_after_s: delay_after,
                increase_percent: 100.0 * (delay_after - delay_before)
                    / delay_before.max(f64::MIN_POSITIVE),
            },
            sim: sim_summary,
            per_gate,
            perf,
            timings,
        };
        Ok((report, primary.circuit))
    }

    /// Stage 2b: builds the statistics propagator under the configured
    /// budget, walking the degradation ladder on a recoverable failure
    /// (see [`Flow::degrade`]). `deadline_on` is false for post-trip
    /// rebuilds, where only cancellation is still enforced. Returns the
    /// propagator plus the backend that actually produced the
    /// statistics.
    fn build_propagator(
        &self,
        env: &FlowEnv,
        circuit: &Circuit,
        stats: &[SignalStats],
        run_governor: Option<&Governor>,
        deadline_on: bool,
        ladder: &mut LadderState,
    ) -> Result<(IncrementalPropagator, PropagationMode), Error> {
        let governor = |deadline: bool| {
            if deadline {
                run_governor.cloned()
            } else {
                self.cancel_governor()
            }
        };
        // A post-trip rebuild that already fell back stays independent.
        let mode = if ladder.rung == Some("independent-fallback") {
            PropagationMode::Independent
        } else {
            self.prob
        };
        let injected = (mode == PropagationMode::ExactBdd
            && faultpoint::hit("exact-build") == Some(Fault::NodeLimit))
            || (matches!(mode, PropagationMode::PartitionedBdd { .. })
                && faultpoint::hit("part-build") == Some(Fault::NodeLimit));
        // The configured order heuristic seeds the *first* exact build;
        // the ladder's info-reorder-retry below is independent of it.
        let bdd_order = match (mode, self.order) {
            (PropagationMode::ExactBdd, OrderHeuristic::InfoMeasure) => {
                let compiled = CompiledCircuit::compile(circuit, &env.library)?;
                let probs: Vec<f64> = stats.iter().map(|s| s.probability()).collect();
                Some(tr_bdd::order::info_measure(&compiled, &probs))
            }
            _ => None,
        };
        let first = if injected {
            Err(injected_node_limit(self.budget.bdd_node_budget))
        } else {
            IncrementalPropagator::new_with(
                circuit,
                &env.library,
                stats,
                mode,
                &PropagatorOptions {
                    node_limit: self.budget.bdd_node_budget,
                    governor: governor(deadline_on),
                    bdd_order,
                },
            )
        };
        let err = match first {
            Ok(p) => return Ok((p, mode)),
            Err(e) => e,
        };
        // Explicit cancellation is a real abort; so is any trip when
        // degradation is off.
        if let PropagationError::Interrupted(i) = &err {
            if i.reason == TripReason::Cancelled {
                return Err(Error::Interrupted(*i));
            }
        }
        if !self.degrade {
            return Err(err.into());
        }
        let node_limit_blown = matches!(&err, PropagationError::Bdd(BddError::NodeLimit { .. }));
        if !node_limit_blown && !matches!(&err, PropagationError::Interrupted(_)) {
            // Compile/validation failures are defects, not resource
            // exhaustion — no ladder for those.
            return Err(err.into());
        }
        // Rung 1 for the partitioned backend (blown node budget only):
        // shrink the regions. The per-region BDD size tracks region size
        // super-linearly, so halving the per-region budget — which
        // halves the packing cost — reliably shrinks the biggest region
        // engine far more than 2×. Up to three halvings; the cut only
        // ever moves toward the gate-local (independent) limit, so each
        // step trades accuracy for fit, exactly what a degradation rung
        // should do.
        if node_limit_blown {
            if let PropagationMode::PartitionedBdd {
                max_region_nodes,
                max_cut_width,
            } = mode
            {
                // An armed faultpoint fails the whole rung (every
                // halving), mirroring `info-reorder-retry`.
                let rung_injected = faultpoint::hit("shrink-regions") == Some(Fault::NodeLimit);
                let mut nodes = if max_region_nodes == 0 {
                    tr_power::partition::DEFAULT_REGION_NODES
                } else {
                    max_region_nodes
                };
                for _ in 0..3 {
                    if rung_injected || nodes <= 2 {
                        break;
                    }
                    nodes /= 2;
                    let shrunk = PropagationMode::PartitionedBdd {
                        max_region_nodes: nodes,
                        max_cut_width,
                    };
                    match IncrementalPropagator::new_with(
                        circuit,
                        &env.library,
                        stats,
                        shrunk,
                        &PropagatorOptions {
                            node_limit: self.budget.bdd_node_budget,
                            governor: governor(deadline_on),
                            bdd_order: None,
                        },
                    ) {
                        Ok(p) => {
                            ladder.record("shrink-regions", "stats", &err);
                            return Ok((p, shrunk));
                        }
                        Err(PropagationError::Interrupted(i))
                            if i.reason == TripReason::Cancelled =>
                        {
                            return Err(Error::Interrupted(i));
                        }
                        Err(_) => {} // halve again, then rung 2
                    }
                }
            }
        }
        // Rung 1 (blown node budget only): the half-built engine was
        // dropped above, freeing every node; retry once under the cheap
        // information-measure order — high-entropy inputs driving large
        // fanout cones get the top levels — which often fits where the
        // structural default does not. A blown deadline skips straight
        // to rung 2: a second exact build would blow it again.
        if node_limit_blown && mode == PropagationMode::ExactBdd {
            let compiled = CompiledCircuit::compile(circuit, &env.library)?;
            let probs: Vec<f64> = stats.iter().map(|s| s.probability()).collect();
            let order = tr_bdd::order::info_measure(&compiled, &probs);
            let retry = if faultpoint::hit("info-reorder-retry") == Some(Fault::NodeLimit) {
                Err(injected_node_limit(self.budget.bdd_node_budget))
            } else {
                IncrementalPropagator::new_with(
                    circuit,
                    &env.library,
                    stats,
                    PropagationMode::ExactBdd,
                    &PropagatorOptions {
                        node_limit: self.budget.bdd_node_budget,
                        governor: governor(deadline_on),
                        bdd_order: Some(order),
                    },
                )
            };
            match retry {
                Ok(p) => {
                    ladder.record("info-reorder-retry", "stats", &err);
                    return Ok((p, PropagationMode::ExactBdd));
                }
                Err(PropagationError::Interrupted(i)) if i.reason == TripReason::Cancelled => {
                    return Err(Error::Interrupted(i));
                }
                Err(_) => {} // fall through to rung 2
            }
        }
        // Rung 2: the independence assumption — always fits, always
        // fast. From here on the deadline is no longer enforced (the
        // request must complete); only explicit cancellation aborts.
        let fallback = IncrementalPropagator::new_with(
            circuit,
            &env.library,
            stats,
            PropagationMode::Independent,
            &PropagatorOptions {
                governor: self.cancel_governor(),
                ..PropagatorOptions::default()
            },
        )?;
        ladder.record("independent-fallback", "stats", &err);
        Ok((fallback, PropagationMode::Independent))
    }

    /// One governed optimization pass; a tripped budget degrades to an
    /// ungoverned rerun instead of failing (cancellation still aborts).
    #[allow(clippy::too_many_arguments)]
    fn optimize_once_degradable(
        &self,
        env: &FlowEnv,
        circuit: &Circuit,
        net_stats: &[SignalStats],
        objective: Objective,
        partition: Option<&tr_netlist::partition::Partition>,
        scratch: &mut Scratch,
        run_governor: Option<&Governor>,
        ladder: &mut LadderState,
    ) -> Result<OptimizeResult, Error> {
        let governor = if ladder.degraded {
            self.cancel_governor()
        } else {
            run_governor.cloned()
        };
        match self.optimize_once(
            env,
            circuit,
            net_stats,
            objective,
            partition,
            scratch,
            governor.as_ref(),
        ) {
            Err(Error::Interrupted(i)) if self.degrade && i.reason != TripReason::Cancelled => {
                ladder.record("finish-ungoverned", "optimize", &i);
                self.optimize_once(
                    env,
                    circuit,
                    net_stats,
                    objective,
                    partition,
                    scratch,
                    self.cancel_governor().as_ref(),
                )
            }
            other => other,
        }
    }

    /// One governed switch-level simulation; a tripped budget degrades
    /// to an ungoverned rerun instead of failing.
    fn simulate_power_degradable(
        &self,
        env: &FlowEnv,
        circuit: &Circuit,
        stats: &[SignalStats],
        cfg: &SimConfig,
        run_governor: Option<&Governor>,
        ladder: &mut LadderState,
    ) -> Result<f64, Error> {
        let governor = if ladder.degraded {
            self.cancel_governor()
        } else {
            run_governor.cloned()
        };
        let run = |governor: Option<&Governor>| {
            simulate_governed(
                circuit,
                &env.library,
                &env.process,
                &env.timing,
                stats,
                cfg,
                governor,
            )
        };
        match run(governor.as_ref()) {
            Ok(report) => Ok(report.power),
            Err(i) if self.degrade && i.reason != TripReason::Cancelled => {
                ladder.record("finish-ungoverned", "sim", &i);
                Ok(run(self.cancel_governor().as_ref())?.power)
            }
            Err(i) => Err(Error::Interrupted(i)),
        }
    }

    /// A deterministic stage-boundary governor check. A trip here
    /// degrades — the remaining stages run under cancellation only,
    /// recorded as the `finish-ungoverned` rung — or, for explicit
    /// cancellation or with degradation off, aborts the run.
    fn checkpoint(
        &self,
        run_governor: Option<&Governor>,
        ladder: &mut LadderState,
    ) -> Result<(), Error> {
        if ladder.degraded {
            // Already finishing ungoverned; only cancellation applies.
            if let Some(governor) = self.cancel_governor() {
                governor.check_now("flow")?;
            }
            return Ok(());
        }
        let Some(governor) = run_governor else {
            return Ok(());
        };
        match governor.check_now("flow") {
            Ok(()) => Ok(()),
            Err(i) if self.degrade && i.reason != TripReason::Cancelled => {
                ladder.record("finish-ungoverned", "boundary", &i);
                Ok(())
            }
            Err(i) => Err(Error::Interrupted(i)),
        }
    }

    /// One optimization pass with the configured bounding mode, against
    /// the already-computed per-net statistics (whichever backend made
    /// them). With a partition (the `part` backend) and worker threads,
    /// the pass shards by region — same results, region-local schedule.
    #[allow(clippy::too_many_arguments)]
    fn optimize_once(
        &self,
        env: &FlowEnv,
        circuit: &Circuit,
        net_stats: &[SignalStats],
        objective: Objective,
        partition: Option<&tr_netlist::partition::Partition>,
        scratch: &mut Scratch,
        governor: Option<&Governor>,
    ) -> Result<OptimizeResult, Error> {
        // Faultpoint: an injected delay here blows a short deadline at
        // the optimizer's first governor check, deterministically.
        let _ = faultpoint::hit("optimize");
        match (self.delay_bound, objective) {
            (DelayBound::Unbounded, obj) => Ok(if self.threads > 1 {
                match partition {
                    Some(part) => optimize_sharded_governed_with_net_stats(
                        circuit,
                        &env.library,
                        &env.model,
                        net_stats,
                        obj,
                        part,
                        self.threads,
                        governor,
                    )?,
                    None => optimize_parallel_governed_with_net_stats(
                        circuit,
                        &env.library,
                        &env.model,
                        net_stats,
                        obj,
                        self.threads,
                        governor,
                    )?,
                }
            } else {
                optimize_governed_with_net_stats(
                    circuit,
                    &env.library,
                    &env.model,
                    net_stats,
                    obj,
                    scratch,
                    governor,
                )?
            }),
            (DelayBound::Local, Objective::MinimizePower) => {
                Ok(optimize_delay_bounded_with_net_stats(
                    circuit,
                    &env.library,
                    &env.model,
                    &env.timing,
                    net_stats,
                ))
            }
            (DelayBound::Slack, Objective::MinimizePower) => {
                Ok(optimize_slack_aware_with_net_stats(
                    circuit,
                    &env.library,
                    &env.model,
                    &env.timing,
                    net_stats,
                    0.0,
                ))
            }
            (bound, Objective::MaximizePower) => Err(Error::Unsupported(format!(
                "--delay-bound {} only supports --objective min",
                bound.as_str()
            ))),
        }
    }
}

/// Gate indices whose configuration or cell differs between two
/// structurally identical circuits — the dirty set handed to the
/// incremental re-propagator after an accepted optimization pass.
fn changed_gate_ids(before: &Circuit, after: &Circuit) -> Vec<GateId> {
    before
        .gates()
        .iter()
        .zip(after.gates())
        .enumerate()
        .filter(|(_, (b, a))| b.config != a.config || b.cell != a.cell)
        .map(|(i, _)| GateId(i))
        .collect()
}

/// The report label of a scenario + seed pair.
fn scenario_label(scenario: &Scenario, seed: u64) -> String {
    match scenario {
        Scenario::A { .. } => format!("A#{seed}"),
        Scenario::B { clock_hz } => format!("B@{clock_hz}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_netlist::generators;

    #[test]
    fn flow_matches_direct_optimizer_calls() {
        let env = FlowEnv::new();
        let adder = generators::ripple_carry_adder(4, &env.library);
        let stats = Scenario::a().input_stats(adder.primary_inputs().len(), 9);
        let direct = tr_reorder::optimize(
            &adder,
            &env.library,
            &env.model,
            &stats,
            Objective::MinimizePower,
        );
        let report = Flow::from_circuit(adder)
            .scenario(Scenario::a(), 9)
            .run(&env)
            .expect("flow runs");
        assert_eq!(report.power.model_after_w, direct.power_after);
        assert_eq!(report.power.model_before_w, direct.power_before);
        assert_eq!(report.changed_gates, direct.changed_gates);
        assert_eq!(report.power.model_best_w, Some(direct.power_after));
        assert!(report.power.headroom_percent.unwrap() > 0.0);
        assert_eq!(report.scenario, "A#9");
    }

    #[test]
    fn bdd_backend_reports_mode_and_independence_error() {
        let env = FlowEnv::new();
        let adder = generators::ripple_carry_adder(8, &env.library);
        let base = Flow::from_circuit(adder).scenario(Scenario::a(), 11);
        let indep = base.clone().run(&env).unwrap();
        assert_eq!(indep.prob_mode, "indep");
        assert_eq!(indep.independence_error, None);
        let exact = base.prob(PropagationMode::ExactBdd).run(&env).unwrap();
        assert_eq!(exact.prob_mode, "bdd");
        let err = exact.independence_error.expect("exact backend measures it");
        assert!(
            err > 1e-6 && err < 0.5,
            "adder reconvergence error out of range: {err}"
        );
        // Different statistics ⇒ (generally) different power totals; at
        // minimum the pipeline must complete and stay self-consistent.
        assert!(exact.power.model_after_w > 0.0);
        assert!(exact.power.model_after_w <= exact.power.model_before_w + 1e-18);
    }

    #[test]
    fn prob_mode_parses_cli_spellings() {
        assert_eq!(
            parse_prob_mode("indep", 1).unwrap(),
            PropagationMode::Independent
        );
        assert_eq!(
            parse_prob_mode("bdd", 1).unwrap(),
            PropagationMode::ExactBdd
        );
        assert!(matches!(
            parse_prob_mode("monte", 9).unwrap(),
            PropagationMode::Monte { seed: 9, .. }
        ));
        assert!(parse_prob_mode("exact", 1).unwrap_err().is_usage());
    }

    #[test]
    fn partitioned_backend_reports_its_shape() {
        let env = FlowEnv::new();
        let c = generators::array_multiplier(6, &env.library);
        let report = Flow::from_circuit(c)
            .scenario(Scenario::a(), 7)
            .prob(PropagationMode::partitioned())
            .run(&env)
            .unwrap();
        // Whether this lands undegraded or through the shrink-regions
        // rung depends on the stimulus (the information-measure variable
        // order is statistics-driven); either way the statistics must
        // come from the partitioned backend and report its shape.
        assert_eq!(report.prob_mode, "part");
        if report.degraded {
            assert_eq!(report.degrade_rung.as_deref(), Some("shrink-regions"));
        }
        let regions = report.partition_regions.expect("part reports regions");
        assert!(regions > 1, "a 6-bit multiplier must split");
        assert_eq!(
            report.max_cut_width,
            Some(tr_power::partition::DEFAULT_CUT_WIDTH)
        );
        let bound = report
            .partition_error_bound
            .expect("part reports its structural bound");
        assert!(bound > 0.0 && bound <= 1.0, "bound: {bound}");
        assert!(report.independence_error.is_some());
        assert!(report.power.model_after_w > 0.0);
    }

    #[test]
    fn partitioned_cut_width_zero_matches_exact_bdd() {
        let env = FlowEnv::new();
        let c = generators::ripple_carry_adder(8, &env.library);
        let base = Flow::from_circuit(c).scenario(Scenario::a(), 11);
        let exact = base
            .clone()
            .prob(PropagationMode::ExactBdd)
            .run(&env)
            .unwrap();
        let part = base
            .prob(PropagationMode::PartitionedBdd {
                max_region_nodes: 1 << 16,
                max_cut_width: 0,
            })
            .run(&env)
            .unwrap();
        assert_eq!(part.partition_regions, Some(1));
        assert_eq!(
            part.partition_error_bound,
            Some(0.0),
            "0.0 certifies exactness"
        );
        assert_eq!(part.power.model_after_w, exact.power.model_after_w);
        assert_eq!(part.changed_gates, exact.changed_gates);
    }

    #[test]
    fn partitioned_threads_agree_with_sequential() {
        let env = FlowEnv::new();
        let c = generators::array_multiplier(6, &env.library);
        let base = Flow::from_circuit(c)
            .scenario(Scenario::b(), 0)
            .prob(PropagationMode::partitioned());
        let seq = base.clone().threads(1).run(&env).unwrap();
        let par = base.threads(4).run(&env).unwrap();
        assert_eq!(seq.power.model_after_w, par.power.model_after_w);
        assert_eq!(seq.changed_gates, par.changed_gates);
        assert_eq!(seq.partition_regions, par.partition_regions);
    }

    #[test]
    fn parallel_threads_agree_with_sequential() {
        let env = FlowEnv::new();
        let c = generators::alu(4, &env.library);
        let base = Flow::from_circuit(c).scenario(Scenario::b(), 0);
        let seq = base.clone().threads(1).run(&env).unwrap();
        let par = base.threads(4).run(&env).unwrap();
        assert_eq!(seq.power.model_after_w, par.power.model_after_w);
        assert_eq!(seq.changed_gates, par.changed_gates);
    }

    #[test]
    fn max_objective_sim_fields_keep_best_worst_semantics() {
        let env = FlowEnv::new();
        let c = generators::ripple_carry_adder(2, &env.library);
        let report = Flow::from_circuit(c)
            .scenario(Scenario::a(), 5)
            .objective(Objective::MaximizePower)
            .simulate(SimOptions::quick(3))
            .run(&env)
            .unwrap();
        let sim = report.sim.expect("simulation requested");
        // Maximizing: the optimized circuit IS the worst ordering.
        assert_eq!(sim.worst_w, Some(sim.optimized_w));
        let best = sim.best_w.expect("headroom pass simulated the best");
        assert!(best <= sim.worst_w.unwrap());
        assert!(sim.reduction_percent.unwrap() >= 0.0);
        assert_eq!(report.power.model_worst_w, Some(report.power.model_after_w));
    }

    #[test]
    fn fixpoint_flow_converges_and_matches_the_single_pass() {
        let env = FlowEnv::new();
        let adder = generators::ripple_carry_adder(8, &env.library);
        let base = Flow::from_circuit(adder)
            .scenario(Scenario::a(), 11)
            .prob(PropagationMode::ExactBdd);
        let single = base.clone().run(&env).unwrap();
        let fixed = base.fixpoint(true).run(&env).unwrap();
        assert!(fixed.changed_gates > 0, "optimizer should find moves");
        // Config-only moves: one accepting pass, one confirming pass.
        assert_eq!(fixed.fixpoint_iters, Some(2));
        assert!(fixed.repropagations >= 1);
        let disc = fixed
            .stale_power_discrepancy_w
            .expect("fixpoint flows measure freshness");
        assert!(
            disc <= 1e-12 * fixed.power.model_after_w,
            "§4.2: config-only discrepancy must vanish, got {disc}"
        );
        // Same final circuit, same (fresh) power as the single pass.
        assert_eq!(fixed.changed_gates, single.changed_gates);
        let rel = (fixed.power.model_after_w - single.power.model_after_w).abs()
            / single.power.model_after_w;
        assert!(rel <= 1e-12, "fixpoint vs single-pass power: {rel}");
    }

    #[test]
    fn fixpoint_rejects_delay_bounds() {
        let env = FlowEnv::new();
        let c = generators::parity_tree(4, &env.library);
        let err = Flow::from_circuit(c)
            .fixpoint(true)
            .delay_bound(DelayBound::Local)
            .run(&env)
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn exact_backend_single_pass_reports_fresh_final_power() {
        let env = FlowEnv::new();
        let adder = generators::ripple_carry_adder(8, &env.library);
        let base = Flow::from_circuit(adder).scenario(Scenario::a(), 11);
        // The independent backend has no staleness to measure.
        let indep = base.clone().run(&env).unwrap();
        assert_eq!(indep.stale_power_discrepancy_w, None);
        assert_eq!(indep.repropagations, 0);
        assert_eq!(indep.fixpoint_iters, None);
        // The exact backend re-propagates the accepted changes' cones
        // and records the (vanishing, §4.2) discrepancy.
        let exact = base.prob(PropagationMode::ExactBdd).run(&env).unwrap();
        assert!(exact.changed_gates > 0);
        assert_eq!(exact.repropagations, 1);
        let disc = exact
            .stale_power_discrepancy_w
            .expect("exact backends check freshness");
        assert!(disc <= 1e-12 * exact.power.model_after_w, "got {disc}");
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn zero_threads_panics() {
        let env = FlowEnv::new();
        let c = generators::parity_tree(4, &env.library);
        let _ = Flow::from_circuit(c).threads(0).run(&env);
    }

    #[test]
    fn vcd_without_simulate_is_rejected() {
        let env = FlowEnv::new();
        let c = generators::parity_tree(4, &env.library);
        let err = Flow::from_circuit(c)
            .vcd("/tmp/never-written.vcd")
            .run(&env)
            .unwrap_err();
        assert!(err.is_usage());
    }

    #[test]
    fn bounded_max_objective_is_rejected() {
        let env = FlowEnv::new();
        let c = generators::parity_tree(4, &env.library);
        let err = Flow::from_circuit(c)
            .objective(Objective::MaximizePower)
            .delay_bound(DelayBound::Slack)
            .run(&env)
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn explicit_stats_must_match_input_count() {
        let env = FlowEnv::new();
        let c = generators::parity_tree(4, &env.library);
        let err = Flow::from_circuit(c)
            .input_stats(vec![SignalStats::new(0.5, 1.0); 2])
            .run(&env)
            .unwrap_err();
        assert!(matches!(
            err,
            Error::StatsMismatch {
                expected: 4,
                got: 2
            }
        ));
    }

    #[test]
    fn slack_bound_never_grows_the_critical_path() {
        let env = FlowEnv::new();
        let c = generators::array_multiplier(4, &env.library);
        let report = Flow::from_circuit(c)
            .scenario(Scenario::a(), 3)
            .delay_bound(DelayBound::Slack)
            .run(&env)
            .unwrap();
        assert!(report.delay.increase_percent <= 1e-9);
        // Bounded flows skip the headroom pass.
        assert_eq!(report.power.headroom_percent, None);
    }

    #[test]
    fn zero_deadline_degrades_to_independent_and_completes() {
        let env = FlowEnv::new();
        let adder = generators::ripple_carry_adder(8, &env.library);
        let report = Flow::from_circuit(adder)
            .scenario(Scenario::a(), 11)
            .prob(PropagationMode::ExactBdd)
            .budget(RunBudget::default().deadline_ms(0))
            .run(&env)
            .expect("degradation ladder must land the run");
        assert!(report.degraded);
        assert_eq!(report.degrade_rung.as_deref(), Some("independent-fallback"));
        assert_eq!(report.prob_mode, "indep");
        assert!(report.degrade_reason.is_some());
        assert!(report.power.model_after_w > 0.0);
    }

    #[test]
    fn tiny_node_budget_climbs_the_ladder_but_completes() {
        let env = FlowEnv::new();
        let adder = generators::ripple_carry_adder(8, &env.library);
        let report = Flow::from_circuit(adder)
            .scenario(Scenario::a(), 11)
            .prob(PropagationMode::ExactBdd)
            .budget(RunBudget::default().bdd_nodes(4))
            .run(&env)
            .expect("node-limit ladder must land the run");
        assert!(report.degraded);
        // 4 nodes is too few under ANY order: the info-measure retry also
        // blows the budget and the run lands on the independent backend.
        assert_eq!(report.degrade_rung.as_deref(), Some("independent-fallback"));
        assert_eq!(report.prob_mode, "indep");
        let reason = report.degrade_reason.expect("first failure recorded");
        assert!(reason.contains("node limit"), "reason: {reason}");
    }

    #[test]
    fn generous_node_budget_stays_exact_and_undegraded() {
        let env = FlowEnv::new();
        let adder = generators::ripple_carry_adder(8, &env.library);
        let report = Flow::from_circuit(adder)
            .scenario(Scenario::a(), 11)
            .prob(PropagationMode::ExactBdd)
            .budget(RunBudget::default().bdd_nodes(1 << 20))
            .run(&env)
            .unwrap();
        assert!(!report.degraded);
        assert_eq!(report.degrade_rung, None);
        assert_eq!(report.prob_mode, "bdd");
    }

    #[test]
    fn pre_cancelled_token_aborts_with_interrupted() {
        let env = FlowEnv::new();
        let c = generators::parity_tree(4, &env.library);
        let token = CancelToken::new();
        token.cancel();
        let err = Flow::from_circuit(c).cancel(token).run(&env).unwrap_err();
        match err {
            Error::Interrupted(i) => assert_eq!(i.reason, TripReason::Cancelled),
            other => panic!("expected Interrupted, got {other}"),
        }
    }

    #[test]
    fn degrade_off_surfaces_the_typed_error() {
        let env = FlowEnv::new();
        let adder = generators::ripple_carry_adder(8, &env.library);
        let err = Flow::from_circuit(adder)
            .scenario(Scenario::a(), 11)
            .prob(PropagationMode::ExactBdd)
            .budget(RunBudget::default().bdd_nodes(4))
            .degrade(false)
            .run(&env)
            .unwrap_err();
        assert!(
            err.to_string().contains("node limit"),
            "expected the NodeLimit error verbatim, got: {err}"
        );
    }

    #[test]
    fn per_gate_rows_cover_every_gate() {
        let env = FlowEnv::new();
        let c = generators::ripple_carry_adder(2, &env.library);
        let n = c.gates().len();
        let report = Flow::from_circuit(c)
            .scenario(Scenario::a(), 1)
            .per_gate(true)
            .run(&env)
            .unwrap();
        let rows = report.per_gate.expect("per-gate rows requested");
        assert_eq!(rows.len(), n);
        let total: f64 = rows.iter().map(|r| r.power_w).sum();
        assert!((total - report.power.model_after_w).abs() <= 1e-12 * total.max(1e-30));
    }
}
