//! Where a flow's circuit comes from: a netlist file in any supported
//! format (auto-detected), or an in-memory [`Circuit`].

use std::path::{Path, PathBuf};

use crate::error::Error;
use tr_gatelib::Library;
use tr_netlist::map::MapOptions;
use tr_netlist::{bench, blif, format, map, Circuit};

/// A netlist format the pipeline can ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetlistFormat {
    /// ISCAS-style `.bench` (technology-independent; gets mapped).
    Bench,
    /// Combinational `.blif` (technology-independent; gets mapped).
    Blif,
    /// Native `.trnet` (already mapped and configured).
    Trnet,
}

impl NetlistFormat {
    /// Infers the format from a file name's extension.
    pub fn detect(path: &Path) -> Option<Self> {
        match path.extension()?.to_str()? {
            "bench" => Some(NetlistFormat::Bench),
            "blif" => Some(NetlistFormat::Blif),
            "trnet" => Some(NetlistFormat::Trnet),
            _ => None,
        }
    }
}

/// The input end of a [`Flow`](crate::Flow).
#[derive(Debug, Clone)]
pub enum Source {
    /// Read and parse `path`, auto-detecting the format.
    Path(PathBuf),
    /// Use an already-constructed mapped circuit.
    Circuit(Circuit),
}

impl Source {
    /// A short display name for reports: the file stem, or the circuit's
    /// own name.
    pub fn name(&self) -> String {
        match self {
            Source::Path(p) => p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("netlist")
                .to_string(),
            Source::Circuit(c) => c.name().to_string(),
        }
    }

    /// Materializes the mapped circuit (parsing + technology mapping for
    /// file sources; a clone for in-memory sources).
    pub fn load(&self, library: &Library, options: &MapOptions) -> Result<Circuit, Error> {
        match self {
            Source::Path(path) => load_path(path, library, options),
            Source::Circuit(c) => Ok(c.clone()),
        }
    }
}

impl From<&Path> for Source {
    fn from(p: &Path) -> Self {
        Source::Path(p.to_path_buf())
    }
}

impl From<PathBuf> for Source {
    fn from(p: PathBuf) -> Self {
        Source::Path(p)
    }
}

impl From<Circuit> for Source {
    fn from(c: Circuit) -> Self {
        Source::Circuit(c)
    }
}

/// Reads `path`, detects its format, parses it, and (for the generic
/// formats) maps it onto `library`.
pub fn load_path(path: &Path, library: &Library, options: &MapOptions) -> Result<Circuit, Error> {
    let format =
        NetlistFormat::detect(path).ok_or_else(|| Error::UnknownFormat(path.to_path_buf()))?;
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("netlist");
    parse_netlist(stem, &text, format, library, options)
}

/// Parses netlist text in the given format into a mapped circuit.
///
/// The one entry point behind every file-based source: `.bench` and
/// `.blif` go through the technology mapper with `options`; `.trnet` is
/// already mapped and is validated against `library` instead.
pub fn parse_netlist(
    name: &str,
    text: &str,
    format: NetlistFormat,
    library: &Library,
    options: &MapOptions,
) -> Result<Circuit, Error> {
    match format {
        NetlistFormat::Bench => {
            let generic = bench::parse(name, text)?;
            Ok(map::map(&generic, library, options))
        }
        NetlistFormat::Blif => {
            let generic = blif::parse(text)?;
            Ok(map::map(&generic, library, options))
        }
        NetlistFormat::Trnet => Ok(format::parse(text, library)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_detection() {
        assert_eq!(
            NetlistFormat::detect(Path::new("a/b/c17.bench")),
            Some(NetlistFormat::Bench)
        );
        assert_eq!(
            NetlistFormat::detect(Path::new("x.blif")),
            Some(NetlistFormat::Blif)
        );
        assert_eq!(
            NetlistFormat::detect(Path::new("x.trnet")),
            Some(NetlistFormat::Trnet)
        );
        assert_eq!(NetlistFormat::detect(Path::new("x.v")), None);
        assert_eq!(NetlistFormat::detect(Path::new("Makefile")), None);
    }

    #[test]
    fn bench_text_parses_and_maps() {
        let lib = Library::standard();
        let text = bench::write(&bench::c17());
        let c = parse_netlist(
            "c17",
            &text,
            NetlistFormat::Bench,
            &lib,
            &MapOptions::default(),
        )
        .expect("c17 maps");
        assert!(c.validate(&lib).is_ok());
        assert_eq!(c.primary_inputs().len(), 5);
    }

    #[test]
    fn unknown_extension_is_reported() {
        let lib = Library::standard();
        let err = load_path(Path::new("x.v"), &lib, &MapOptions::default()).unwrap_err();
        assert!(matches!(err, Error::UnknownFormat(_)));
    }

    #[test]
    fn missing_file_is_io_error() {
        let lib = Library::standard();
        let err = load_path(
            Path::new("/nonexistent/x.bench"),
            &lib,
            &MapOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Io { .. }));
    }
}
