//! The one error type of the pipeline.
//!
//! Every failure a flow can hit — I/O, the three netlist parsers, circuit
//! validation, signal-statistics construction, Boolean arity mixups, bad
//! user input — converges here, with `From` impls so `?` works across
//! every crate boundary and [`std::error::Error::source`] chaining so
//! callers can still reach the original error.

use std::fmt;
use std::path::PathBuf;

use tr_boolean::govern::Interrupted;
use tr_boolean::{ArityError, StatsError};
use tr_netlist::bench::ParseError;
use tr_netlist::blif::BlifError;
use tr_netlist::format::FormatError;
use tr_netlist::CircuitError;
use tr_power::PropagationError;

/// Any failure of the netlist → report pipeline.
#[derive(Debug)]
pub enum Error {
    /// Reading or writing a file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// An ISCAS `.bench` document failed to parse.
    Bench(ParseError),
    /// A `.blif` document failed to parse.
    Blif(BlifError),
    /// A native `.trnet` document failed to parse or validate.
    Format(FormatError),
    /// A circuit failed structural validation.
    Circuit(CircuitError),
    /// Signal statistics were numerically invalid.
    Stats(StatsError),
    /// Boolean functions of mismatched arity were combined.
    Arity(ArityError),
    /// A probability backend failed (BDD node budget, compile failure).
    Propagation(PropagationError),
    /// The netlist format could not be inferred from the file name.
    UnknownFormat(PathBuf),
    /// The number of supplied input statistics does not match the
    /// circuit's primary-input count.
    StatsMismatch {
        /// Primary inputs of the circuit.
        expected: usize,
        /// Statistics supplied.
        got: usize,
    },
    /// The requested option combination is not supported (e.g. a delay
    /// bound with `--objective max`).
    Unsupported(String),
    /// The run was cut short — cancelled through its
    /// [`CancelToken`](crate::CancelToken), or a budget tripped with
    /// degradation disabled. Carries which phase stopped, why, and how
    /// much work was done.
    Interrupted(Interrupted),
    /// A pipeline stage panicked. Only the batch runner produces this:
    /// it fences every cell with `catch_unwind` so one panicking cell
    /// becomes a reported per-cell outcome instead of killing the whole
    /// grid.
    Panicked(String),
    /// Some cells of a batch run failed (each already reported on
    /// stderr by the driver).
    Batch {
        /// Failed (circuit, scenario) cells.
        failed: usize,
        /// Total cells in the grid.
        total: usize,
    },
    /// The invocation itself was malformed (bad flag, missing argument).
    /// CLI front ends map this to a distinct exit code.
    Usage(String),
}

impl Error {
    /// Whether this is a usage error (caller-side, exit code 2) rather
    /// than a pipeline failure (data-side, exit code 1).
    pub fn is_usage(&self) -> bool {
        matches!(self, Error::Usage(_))
    }

    /// The CLI exit code for this error: 2 for usage errors, 3 for a
    /// batch with failed cells (partial failure — the successful cells'
    /// reports are still on stdout), 1 for everything else.
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::Usage(_) => 2,
            Error::Batch { .. } => 3,
            _ => 1,
        }
    }

    /// Convenience constructor for I/O failures with path context.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        Error::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Error::Bench(e) => write!(f, "bench {e}"),
            Error::Blif(e) => write!(f, "{e}"),
            Error::Format(e) => write!(f, "{e}"),
            Error::Circuit(e) => write!(f, "invalid circuit: {e}"),
            Error::Stats(e) => write!(f, "invalid statistics: {e}"),
            Error::Arity(e) => write!(f, "{e}"),
            Error::Propagation(e) => write!(f, "{e}"),
            Error::UnknownFormat(path) => write!(
                f,
                "{}: cannot infer netlist format (expected .bench, .blif or .trnet)",
                path.display()
            ),
            Error::StatsMismatch { expected, got } => write!(
                f,
                "circuit has {expected} primary inputs but {got} input statistics were supplied"
            ),
            Error::Unsupported(what) => write!(f, "unsupported: {what}"),
            Error::Interrupted(i) => write!(f, "{i}"),
            Error::Panicked(msg) => write!(f, "stage panicked: {msg}"),
            Error::Batch { failed, total } => {
                write!(f, "batch: {failed} of {total} runs failed")
            }
            Error::Usage(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            Error::Bench(e) => Some(e),
            Error::Blif(e) => Some(e),
            Error::Format(e) => Some(e),
            Error::Circuit(e) => Some(e),
            Error::Stats(e) => Some(e),
            Error::Arity(e) => Some(e),
            Error::Propagation(e) => Some(e),
            Error::Interrupted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Bench(e)
    }
}

impl From<BlifError> for Error {
    fn from(e: BlifError) -> Self {
        Error::Blif(e)
    }
}

impl From<FormatError> for Error {
    fn from(e: FormatError) -> Self {
        Error::Format(e)
    }
}

impl From<CircuitError> for Error {
    fn from(e: CircuitError) -> Self {
        Error::Circuit(e)
    }
}

impl From<StatsError> for Error {
    fn from(e: StatsError) -> Self {
        Error::Stats(e)
    }
}

impl From<ArityError> for Error {
    fn from(e: ArityError) -> Self {
        Error::Arity(e)
    }
}

impl From<PropagationError> for Error {
    fn from(e: PropagationError) -> Self {
        // Interruption is a run-control outcome, not a backend defect;
        // surface it uniformly no matter which layer it bubbled out of.
        match e {
            PropagationError::Interrupted(i) => Error::Interrupted(i),
            e => Error::Propagation(e),
        }
    }
}

impl From<Interrupted> for Error {
    fn from(i: Interrupted) -> Self {
        Error::Interrupted(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn usage_classification() {
        assert!(Error::Usage("bad flag".into()).is_usage());
        assert!(!Error::Unsupported("x".into()).is_usage());
        assert!(!Error::io("f", std::io::Error::other("gone")).is_usage());
    }

    #[test]
    fn exit_codes_distinguish_usage_batch_and_pipeline() {
        assert_eq!(Error::Usage("bad".into()).exit_code(), 2);
        assert_eq!(
            Error::Batch {
                failed: 1,
                total: 4
            }
            .exit_code(),
            3
        );
        assert_eq!(Error::Unsupported("x".into()).exit_code(), 1);
        assert_eq!(Error::Panicked("boom".into()).exit_code(), 1);
    }

    #[test]
    fn propagation_interruptions_normalize_to_interrupted() {
        use tr_boolean::govern::Governor;
        let trip = Governor::with_trip_after(0)
            .check("test")
            .expect_err("trips on the first unit of work");
        let e: Error = PropagationError::Interrupted(trip).into();
        assert!(matches!(e, Error::Interrupted(i) if i.phase == "test"));
        assert!(e.source().is_some());
    }

    #[test]
    fn sources_chain() {
        let e: Error = CircuitError::Cycle.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("cycle"));
        let e = Error::io("missing.bench", std::io::Error::other("no such file"));
        assert!(e.to_string().contains("missing.bench"));
    }

    #[test]
    fn from_impls_cover_every_parser() {
        let _: Error = ParseError {
            line: 1,
            message: "x".into(),
        }
        .into();
        let _: Error = BlifError {
            line: 1,
            message: "x".into(),
        }
        .into();
        let _: Error = FormatError {
            line: 1,
            message: "x".into(),
        }
        .into();
        let _: Error = StatsError::InvalidDensity(-1.0).into();
        let _: Error = ArityError { left: 2, right: 3 }.into();
        let _: Error = PropagationError::Circuit(CircuitError::Cycle).into();
    }
}
