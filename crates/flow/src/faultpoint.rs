//! Deterministic fault injection for the robustness test suite.
//!
//! The pipeline carries named *faultpoints* — fixed sites such as
//! `"exact-build"` (the stage-2b exact-BDD construction),
//! `"info-reorder-retry"` (the ladder's rung-1 rebuild) and
//! `"batch-cell"` (the top of every batch worker cell). A test *arms* a
//! site with a [`Fault`]; the next time execution reaches it, the fault
//! fires — a forced BDD node-limit failure, an injected panic, or an
//! injected delay — and the site disarms itself. `arm_nth` fires on
//! the nth visit instead, so a specific cell of a batch grid can be
//! failed deterministically. There is no randomness anywhere: given the
//! same arming and the same (deterministic) pipeline, the same site
//! visit fires every run.
//!
//! The whole registry sits behind the `fault-injection` cargo feature.
//! Without it, [`hit`] compiles to `None` and the armed-state API does
//! not exist, so production builds carry no injection surface at all.
//! With it, the registry is process-global: tests that arm the same
//! sites must serialize themselves (see `tests/fault_injection.rs`).

/// What an armed faultpoint does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Report a BDD node-limit failure from this site (the caller maps
    /// it onto its own error type), driving the degradation ladder
    /// without needing a circuit that actually blows the budget.
    NodeLimit,
    /// Panic at this site — how the batch runner's per-cell isolation is
    /// proven.
    Panic,
    /// Sleep this many milliseconds, then proceed — long enough to blow
    /// a short deadline at the *next* governor check, deterministically.
    DelayMs(u64),
}

#[cfg(feature = "fault-injection")]
mod registry {
    use super::Fault;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// site → (fault, visits remaining before it fires).
    static SITES: Mutex<Option<HashMap<String, (Fault, u64)>>> = Mutex::new(None);

    pub(super) fn arm(site: &str, fault: Fault, nth: u64) {
        assert!(nth >= 1, "nth is 1-based");
        SITES
            .lock()
            .expect("faultpoint registry poisoned")
            .get_or_insert_with(HashMap::new)
            .insert(site.to_string(), (fault, nth));
    }

    pub(super) fn disarm_all() {
        if let Some(map) = SITES.lock().expect("faultpoint registry poisoned").as_mut() {
            map.clear();
        }
    }

    pub(super) fn take(site: &str) -> Option<Fault> {
        let mut guard = SITES.lock().expect("faultpoint registry poisoned");
        let map = guard.as_mut()?;
        let (fault, remaining) = map.get_mut(site)?;
        *remaining -= 1;
        if *remaining == 0 {
            let fault = *fault;
            map.remove(site);
            Some(fault)
        } else {
            None
        }
    }
}

/// Arms `site` to fire `fault` on its next visit (single-shot).
#[cfg(feature = "fault-injection")]
pub fn arm(site: &str, fault: Fault) {
    registry::arm(site, fault, 1);
}

/// Arms `site` to fire `fault` on its `nth` visit (1-based, single-shot).
#[cfg(feature = "fault-injection")]
pub fn arm_nth(site: &str, fault: Fault, nth: u64) {
    registry::arm(site, fault, nth);
}

/// Disarms every site (test teardown).
#[cfg(feature = "fault-injection")]
pub fn disarm_all() {
    registry::disarm_all();
}

/// A pipeline site announcing itself. [`Fault::Panic`] panics here;
/// [`Fault::DelayMs`] sleeps here and returns `None`;
/// [`Fault::NodeLimit`] is returned for the caller to convert into its
/// own typed failure. Compiles to `None` without the `fault-injection`
/// feature.
pub fn hit(site: &str) -> Option<Fault> {
    #[cfg(feature = "fault-injection")]
    {
        match registry::take(site) {
            Some(Fault::Panic) => panic!("injected fault: panic at faultpoint `{site}`"),
            Some(Fault::DelayMs(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            other => other,
        }
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        None
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn sites_fire_once_on_the_armed_visit() {
        disarm_all();
        arm_nth("t-site", Fault::NodeLimit, 3);
        assert_eq!(hit("t-site"), None);
        assert_eq!(hit("t-site"), None);
        assert_eq!(hit("t-site"), Some(Fault::NodeLimit));
        assert_eq!(hit("t-site"), None, "single-shot");
        assert_eq!(hit("never-armed"), None);
        disarm_all();
    }
}
