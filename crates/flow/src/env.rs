//! The shared substrate every flow runs against.

use tr_gatelib::{Library, Process};
use tr_power::PowerModel;
use tr_timing::TimingModel;

/// Library, process and compiled models, constructed once and shared by
/// any number of [`Flow`](crate::Flow) runs (and across batch threads —
/// everything here is immutable after construction).
pub struct FlowEnv {
    /// The Table 2 cell library.
    pub library: Library,
    /// Process parameters.
    pub process: Process,
    /// The extended power model, compiled against `library`.
    pub model: PowerModel,
    /// The Elmore timing model, compiled against `library`.
    pub timing: TimingModel,
}

impl FlowEnv {
    /// Builds the standard environment: `Library::standard()` +
    /// `Process::default()` and both models compiled against them.
    pub fn new() -> Self {
        let library = Library::standard();
        let process = Process::default();
        let model = PowerModel::new(&library, process.clone());
        let timing = TimingModel::new(&library, process.clone());
        FlowEnv {
            library,
            process,
            model,
            timing,
        }
    }
}

impl Default for FlowEnv {
    fn default() -> Self {
        Self::new()
    }
}
