//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the API subset the workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges;
//! * [`Rng::gen_bool`] and [`Rng::gen`] for `bool`/`f64`/ints.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation workloads and fully deterministic for a given
//! seed, which is all the reproduction needs. It is **not** the same
//! stream as upstream `StdRng` (ChaCha12), so numeric outputs differ from
//! a crates.io build; every consumer in this workspace only relies on
//! determinism, not on a particular stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_f64()
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut impl RngCore) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = rng.next_f64();
        let v = self.start + u * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; clamp back in.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }

    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&y));
            let z = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(z > 0.0 && z < 1.0);
        }
    }

    #[test]
    fn gen_bool_expectation() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "frequency {freq}");
    }
}
