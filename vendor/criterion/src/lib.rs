//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the macro surface the workspace's `benches/perf.rs`
//! uses (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `Bencher::iter`, `Bencher::iter_batched`, `BatchSize`) on top of a
//! simple wall-clock harness: a short warm-up, then timed batches until a
//! measurement budget is spent, reporting mean ns/iter to stdout. There
//! is no statistical analysis or HTML report — just honest numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Timing state for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn run<F: FnMut() -> Duration>(&mut self, mut timed_pass: F) {
        // Warm-up, then measure passes until the budget is spent.
        let _ = timed_pass();
        let budget = Duration::from_millis(300);
        while self.elapsed < budget {
            self.elapsed += timed_pass();
            self.iters += 1;
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed()
        });
    }
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_secs_f64() * 1e9 / b.iters as f64
        };
        println!("{name:<40} {mean_ns:>14.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
