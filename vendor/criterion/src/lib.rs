//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the macro surface the workspace's `benches/perf.rs`
//! uses (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `Bencher::iter`, `Bencher::iter_batched`, `BatchSize`) on top of a
//! simple wall-clock harness: a short warm-up, then timed batches until a
//! measurement budget is spent, reporting mean ns/iter to stdout. There
//! is no statistical analysis or HTML report — just honest numbers.
//!
//! Two extras borrowed from upstream:
//!
//! - `--save-baseline <path>` (upstream takes a name, we take a file
//!   path) writes every measurement of the run as machine-readable
//!   JSON, so CI can archive benchmark baselines (e.g. `BENCH_PR2.json`)
//!   and track the performance trajectory across PRs.
//! - A positional name filter: `cargo bench ... -- <substring>` runs
//!   only the benchmarks whose name contains the substring, so CI can
//!   time one benchmark (the idle-overhead gate) without paying for the
//!   whole suite.
//!
//! ```text
//! cargo bench -p tr-bench --bench perf -- p6 --save-baseline P6.json
//! ```

#![forbid(unsafe_code)]

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One finished measurement, queued for baseline serialization.
struct Measurement {
    name: String,
    mean_ns: f64,
    iters: u64,
}

/// Measurements of the current process, in execution order.
static RESULTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// How `iter_batched` amortizes setup cost (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Timing state for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn run<F: FnMut() -> Duration>(&mut self, mut timed_pass: F) {
        // Warm-up, then measure passes until the budget is spent.
        let _ = timed_pass();
        let budget = Duration::from_millis(300);
        while self.elapsed < budget {
            self.elapsed += timed_pass();
            self.iters += 1;
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed()
        });
    }
}

/// Extracts the positional name filter from an argument list: the first
/// token that is not a flag (or a flag's value). Flags and `libtest`
/// passthroughs (anything starting with `-`) are skipped; the value of
/// `--save-baseline` is consumed with its flag.
fn filter_from(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--save-baseline" => {
                let _ = it.next();
            }
            a if a.starts_with('-') => {}
            a => return Some(a.to_string()),
        }
    }
    None
}

/// The process-wide positional filter (`cargo bench ... -- <substring>`),
/// parsed once from the CLI.
fn name_filter() -> Option<&'static str> {
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER
        .get_or_init(|| {
            let args: Vec<String> = std::env::args().skip(1).collect();
            filter_from(&args)
        })
        .as_deref()
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its mean time per iteration.
    /// A benchmark whose name does not contain the CLI's positional
    /// filter (when one was given) is skipped silently, like upstream.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = name_filter() {
            if !name.contains(filter) {
                return self;
            }
        }
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_secs_f64() * 1e9 / b.iters as f64
        };
        println!("{name:<40} {mean_ns:>14.1} ns/iter ({} iters)", b.iters);
        RESULTS
            .lock()
            .expect("benchmark registry poisoned")
            .push(Measurement {
                name: name.to_string(),
                mean_ns,
                iters: b.iters,
            });
        self
    }
}

/// Handles CLI post-processing after all groups ran (called by
/// [`criterion_main!`]): `--save-baseline <path>` serializes every
/// measurement of the run as JSON.
pub fn finish() {
    let args: Vec<String> = std::env::args().collect();
    let Some(pos) = args.iter().position(|a| a == "--save-baseline") else {
        return;
    };
    let path = args
        .get(pos + 1)
        .expect("--save-baseline needs a file path");
    let results = RESULTS.lock().expect("benchmark registry poisoned");
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{}\n",
            m.name.replace('\\', "\\\\").replace('"', "\\\""),
            m.mean_ns,
            m.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json).expect("write benchmark baseline");
    eprintln!("baseline → {path}");
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, then handling baseline
/// serialization (`--save-baseline <path>`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_measurements() {
        Criterion::default().bench_function("shim_smoke", |b| b.iter(|| std::hint::black_box(2)));
        let results = RESULTS.lock().expect("registry");
        let m = results
            .iter()
            .find(|m| m.name == "shim_smoke")
            .expect("measurement recorded");
        assert!(m.iters > 0);
        assert!(m.mean_ns >= 0.0);
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positional_filter_skips_flags_and_their_values() {
        assert_eq!(filter_from(&args(&[])), None);
        assert_eq!(filter_from(&args(&["--bench", "-q"])), None);
        assert_eq!(filter_from(&args(&["p6"])), Some("p6".to_string()));
        assert_eq!(
            filter_from(&args(&["--bench", "p6_bdd"])),
            Some("p6_bdd".to_string())
        );
        // The baseline path is a flag value, never a filter.
        assert_eq!(filter_from(&args(&["--save-baseline", "out.json"])), None);
        assert_eq!(
            filter_from(&args(&["--save-baseline", "out.json", "p6"])),
            Some("p6".to_string())
        );
    }
}
