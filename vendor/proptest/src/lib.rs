//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest's API the workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! `any::<T>()`, range strategies, tuple strategies,
//! `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Unlike upstream proptest there is **no shrinking** and no persisted
//! failure corpus: every test runs a fixed number of cases drawn from a
//! deterministic RNG seeded from the test's name, so failures are
//! perfectly reproducible across runs and machines (satisfying the
//! repo's "seeded, deterministic property tests" requirement).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Creates the deterministic RNG for a named test.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs, platforms, builds.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use rand::{Rng, SampleRange, Standard};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy for "any value of `T`" (see [`any`]).
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Standard> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    /// Uniform draw from any type with a standard distribution.
    pub fn any<T: Standard>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($r:ty),*) => {$(
            impl Strategy for $r {
                type Value = <$r as SampleRange>::Output;
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(
        Range<u8>,
        Range<u16>,
        Range<u32>,
        Range<u64>,
        Range<usize>,
        Range<f64>,
        RangeInclusive<u8>,
        RangeInclusive<u16>,
        RangeInclusive<u32>,
        RangeInclusive<u64>,
        RangeInclusive<usize>,
        RangeInclusive<f64>
    );

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Number of elements a [`VecStrategy`] draws: fixed or ranged.
    #[derive(Debug, Clone, Copy)]
    pub enum SizeSpec {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniform in `[lo, hi)`.
        Range(usize, usize),
    }

    impl From<usize> for SizeSpec {
        fn from(n: usize) -> Self {
            SizeSpec::Fixed(n)
        }
    }
    impl From<Range<usize>> for SizeSpec {
        fn from(r: Range<usize>) -> Self {
            SizeSpec::Range(r.start, r.end)
        }
    }
    impl From<RangeInclusive<usize>> for SizeSpec {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeSpec::Range(*r.start(), r.end() + 1)
        }
    }

    /// Strategy producing `Vec`s of values drawn from an inner strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeSpec,
    }

    /// `proptest::collection::vec` — a vector of `size` draws of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeSpec>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = match self.size {
                SizeSpec::Fixed(n) => n,
                SizeSpec::Range(lo, hi) => rng.gen_range(lo..hi),
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Run-time configuration.

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::collection;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]  // optional
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(any::<bool>(), 4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let mut __rng = $crate::rng_for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_vecs(x in 1usize..7, v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((1..7).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn mapped_tuples(pair in (0u64..10, 0.0f64..=1.0).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!((0.0..=1.0).contains(&pair.1));
        }
    }

    #[test]
    fn rng_is_deterministic() {
        use crate::strategy::{any, Strategy};
        let mut a = crate::rng_for_test("t");
        let mut b = crate::rng_for_test("t");
        for _ in 0..10 {
            assert_eq!(any::<u64>().generate(&mut a), any::<u64>().generate(&mut b));
        }
    }
}
